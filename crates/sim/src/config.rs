//! Machine configuration: the §5.1 core models, Table 2 parameters, and
//! Table 3 latencies.

use redbin_isa::class::{latency_class, LatencyClass};
use redbin_isa::format::{output_format, ValueFormat};
use redbin_isa::Opcode;

use crate::hash::Fnv64;

/// Which execution core is being modeled (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreModel {
    /// 2-cycle pipelined 2's-complement ALUs (Figure 1, configuration B).
    Baseline,
    /// 1-cycle redundant binary adders, 2-cycle converters, TC register
    /// files only, and the §4.2 limited bypass network (BYP-2 removed;
    /// BYP-3 unusable by RB-input ALUs → a 2-cycle availability hole).
    RbLimited,
    /// 1-cycle redundant binary adders with both TC and RB register files:
    /// redundant results are continuously available to redundant consumers.
    RbFull,
    /// 1-cycle 2's-complement ALUs — the upper bound.
    Ideal,
}

impl CoreModel {
    /// `true` for the two redundant binary machines.
    pub fn is_rb(self) -> bool {
        matches!(self, CoreModel::RbLimited | CoreModel::RbFull)
    }

    /// The name used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            CoreModel::Baseline => "Baseline",
            CoreModel::RbLimited => "RB-limited",
            CoreModel::RbFull => "RB-full",
            CoreModel::Ideal => "Ideal",
        }
    }

    /// The canonical one-byte tag used by [`MachineConfig::canonical_hash`].
    pub fn canonical_tag(self) -> u8 {
        match self {
            CoreModel::Baseline => 0,
            CoreModel::RbLimited => 1,
            CoreModel::RbFull => 2,
            CoreModel::Ideal => 3,
        }
    }

    /// The four machines in figure order.
    pub fn all() -> &'static [CoreModel] {
        &[
            CoreModel::Baseline,
            CoreModel::RbLimited,
            CoreModel::RbFull,
            CoreModel::Ideal,
        ]
    }
}

impl std::fmt::Display for CoreModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which levels of the (up to 3-level) bypass network exist — the Figure 14
/// limited-bypass experiment removes levels from the Ideal machine.
///
/// Level `ℓ` forwards a result produced at the end of cycle `t` to
/// executions beginning at cycle `t + ℓ`; with a 2-cycle register file the
/// register file itself serves executions from `t + 4` onward, so removing
/// levels creates *holes* in availability that the scheduler must schedule
/// around (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BypassLevels {
    /// First-level (back-to-back) bypass paths exist.
    pub l1: bool,
    /// Second-level bypass paths exist.
    pub l2: bool,
    /// Third-level bypass paths exist.
    pub l3: bool,
}

impl BypassLevels {
    /// The full network.
    pub const FULL: BypassLevels = BypassLevels {
        l1: true,
        l2: true,
        l3: true,
    };

    /// Builds a configuration by listing the removed levels (1-indexed, as
    /// the paper names them: `No-1`, `No-2,3`, …).
    ///
    /// # Panics
    ///
    /// Panics if a level outside 1–3 is named.
    pub fn without(removed: &[u8]) -> Self {
        let mut b = BypassLevels::FULL;
        for &l in removed {
            match l {
                1 => b.l1 = false,
                2 => b.l2 = false,
                3 => b.l3 = false,
                _ => panic!("bypass level {l} out of range 1-3"),
            }
        }
        b
    }

    /// `true` if level `l` (1-indexed) is present.
    pub fn has(self, l: u64) -> bool {
        match l {
            1 => self.l1,
            2 => self.l2,
            3 => self.l3,
            _ => false,
        }
    }

    /// The paper's name for the configuration (`Full`, `No-1`, `No-1,2`…).
    pub fn label(self) -> String {
        let removed: Vec<&str> = [(self.l1, "1"), (self.l2, "2"), (self.l3, "3")]
            .iter()
            .filter(|(p, _)| !p)
            .map(|(_, n)| *n)
            .collect();
        if removed.is_empty() {
            "Full".to_string()
        } else {
            format!("No-{}", removed.join(","))
        }
    }
}

/// How dispatched instructions are distributed across the partitioned
/// schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SteeringPolicy {
    /// Groups of two consecutive instructions, round-robin across
    /// schedulers — the paper's configuration (§5.1).
    RoundRobinPairs,
    /// Steer each instruction to the scheduler of its most recent in-flight
    /// producer when that scheduler has a free entry (falling back to
    /// round-robin). This is the paper's §4.2 future-work direction:
    /// keeping consumers next to producers makes limited bypass networks
    /// and clustered forwarding cheaper.
    DependenceAware,
}

/// Whether ALU results are recomputed through the redundant binary
/// datapath and checked against the architectural oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatapathMode {
    /// Values come from the architectural emulator only (fast).
    Fast,
    /// Redundant-capable operations are additionally computed with
    /// `redbin-arith` (redundant adders, digit shifts, SAM decoders) and
    /// asserted equal to the oracle — a whole-program hardware-algorithm
    /// check.
    Faithful,
}

/// The full machine configuration (Table 2 defaults).
///
/// Prefer constructing through [`MachineConfig::builder`] (which returns
/// a `Result` instead of panicking, and which `redbin-analyze` extends
/// with a bypass-soundness check via its `SoundBuild` trait). The public
/// fields remain directly assignable as the *escape hatch* for
/// deliberately-unsound configurations — tests that must exercise the
/// analyzer's rejection paths mutate fields the builder would refuse.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Which §5.1 core model.
    pub model: CoreModel,
    /// Number of functional units: 4 or 8.
    pub width: usize,
    /// Fetch/decode/rename/retire width.
    pub front_width: usize,
    /// Total reservation-station entries, split evenly across schedulers.
    pub window: usize,
    /// Schedulers (each select-2 feeding 2 FUs): width / 2.
    pub schedulers: usize,
    /// Clusters: the 8-wide machine is split into two.
    pub clusters: usize,
    /// Extra forwarding delay between clusters (cycles).
    pub cluster_delay: u64,
    /// Reorder-buffer entries.
    pub rob: usize,
    /// Which bypass levels exist (Figure 14 removes some).
    pub bypass: BypassLevels,
    /// Fetch-to-dispatch depth: 6 fetch/decode + 2 rename.
    pub front_latency: u64,
    /// Select-to-execute depth: 1 schedule + 2 register file read.
    pub sched_to_exec: u64,
    /// Basic blocks fetchable per cycle.
    pub fetch_blocks: usize,
    /// Fetch/decode queue capacity.
    pub fetch_queue: usize,
    /// Redundant→TC format conversion latency (CV1+CV2).
    pub conversion_latency: u64,
    /// L1 instruction cache: (bytes, ways, line bytes, access cycles).
    pub icache: (usize, usize, usize, u64),
    /// L1 data cache: (bytes, ways, line bytes, access cycles).
    pub dcache: (usize, usize, usize, u64),
    /// Unified L2: (bytes, ways, line bytes, access cycles, banks, busy cycles per access).
    pub l2: (usize, usize, usize, u64, usize, u64),
    /// Memory: (access cycles, banks, busy cycles per access).
    pub memory: (u64, usize, u64),
    /// Scheduler steering policy.
    pub steering: SteeringPolicy,
    /// Datapath fidelity checking.
    pub datapath: DatapathMode,
    /// Safety valve: abort if a run exceeds this many cycles (0 = off).
    pub max_cycles: u64,
    /// Hypothetical RB machine without a 2's-complement write-back path:
    /// redundant results live only in the RB register file / bypass
    /// network and are never converted into the TC register file. On such
    /// a machine a TC-needing consumer of a redundant result can *never*
    /// obtain its operand from the register file — if the post-conversion
    /// bypass level is also missing, the operand is statically
    /// unreachable. This is the deliberately-unsound configuration the
    /// `redbin-analyze` bypass pass must reject (and `redbin-served`
    /// refuses to queue). Defaults to `false` on every real machine.
    pub rb_rf_only: bool,
}

impl MachineConfig {
    /// A Table 2 machine of the given width (4 or 8 functional units) and
    /// core model.
    ///
    /// # Panics
    ///
    /// Panics unless `width` is 4 or 8.
    pub fn new(model: CoreModel, width: usize) -> Self {
        assert!(width == 4 || width == 8, "the paper studies 4- and 8-wide");
        let clusters = if width == 8 { 2 } else { 1 };
        MachineConfig {
            model,
            width,
            front_width: 8,
            window: 128,
            schedulers: width / 2,
            clusters,
            cluster_delay: 1,
            rob: 256,
            bypass: BypassLevels::FULL,
            front_latency: 8,
            sched_to_exec: 3,
            fetch_blocks: 2,
            fetch_queue: 96,
            conversion_latency: 2,
            icache: (64 * 1024, 4, 64, 2),
            dcache: (8 * 1024, 2, 64, 2),
            l2: (1024 * 1024, 8, 64, 8, 2, 2),
            memory: (100, 32, 4),
            steering: SteeringPolicy::RoundRobinPairs,
            datapath: DatapathMode::Fast,
            max_cycles: 0,
            rb_rf_only: false,
        }
    }

    /// The Baseline machine (2-cycle pipelined TC adders).
    pub fn baseline(width: usize) -> Self {
        Self::new(CoreModel::Baseline, width)
    }

    /// The RB machine with TC register files and the §4.2 limited bypass.
    pub fn rb_limited(width: usize) -> Self {
        Self::new(CoreModel::RbLimited, width)
    }

    /// The RB machine with TC and RB register files.
    pub fn rb_full(width: usize) -> Self {
        Self::new(CoreModel::RbFull, width)
    }

    /// The Ideal machine (1-cycle TC adders).
    pub fn ideal(width: usize) -> Self {
        Self::new(CoreModel::Ideal, width)
    }

    /// Builder: replace the bypass-level configuration (Figure 14).
    #[must_use]
    pub fn with_bypass(mut self, bypass: BypassLevels) -> Self {
        self.bypass = bypass;
        self
    }

    /// Builder: enable faithful redundant-datapath checking.
    #[must_use]
    pub fn with_datapath(mut self, mode: DatapathMode) -> Self {
        self.datapath = mode;
        self
    }

    /// Builder: replace the steering policy (§4.2 future work).
    #[must_use]
    pub fn with_steering(mut self, steering: SteeringPolicy) -> Self {
        self.steering = steering;
        self
    }

    /// Builder: drop the 2's-complement write-back path for redundant
    /// results (see [`MachineConfig::rb_rf_only`]). The resulting
    /// configuration is *unsound* on RB machines and exists to exercise
    /// the static bypass analysis and the server's submit-time rejection.
    #[must_use]
    pub fn with_rb_rf_only(mut self) -> Self {
        self.rb_rf_only = true;
        self
    }

    /// Checked construction: like [`new`](Self::new) but deferring the
    /// width check to [`MachineConfigBuilder::build`], which returns a
    /// `Result` instead of panicking. `redbin-analyze` layers the bypass
    /// soundness proof on top (its `SoundBuild::build_sound`), so callers
    /// that can see the analyzer get a fully validated machine from one
    /// chain.
    #[must_use]
    pub fn builder(model: CoreModel, width: usize) -> MachineConfigBuilder {
        MachineConfigBuilder {
            width,
            cfg: (width == 4 || width == 8).then(|| MachineConfig::new(model, width)),
        }
    }

    /// Reservation-station entries per scheduler.
    pub fn entries_per_scheduler(&self) -> usize {
        self.window / self.schedulers
    }

    /// The cluster a scheduler belongs to.
    pub fn cluster_of(&self, scheduler: usize) -> usize {
        scheduler * self.clusters / self.schedulers
    }

    /// The Table 3 *execution* latency of an opcode on this machine —
    /// cycles from the first EXE stage to the primary (earliest-format)
    /// result. Loads return the address-generation latency only; the cache
    /// pipeline is added by the memory system.
    pub fn exec_latency(&self, op: Opcode) -> u64 {
        let class = latency_class(op);
        let fast = !matches!(self.model, CoreModel::Baseline);
        match class {
            LatencyClass::IntArith | LatencyClass::IntCompare | LatencyClass::ByteManip => {
                if fast {
                    1
                } else {
                    2
                }
            }
            LatencyClass::IntLogical => 1,
            LatencyClass::ShiftLeft | LatencyClass::ShiftRight => 3,
            LatencyClass::IntMul => 10,
            LatencyClass::FpArith => 8,
            LatencyClass::FpDiv => 32,
            LatencyClass::Mem => 1,
            LatencyClass::Branch => 1,
        }
    }

    /// `true` if the opcode's register result is produced in redundant
    /// binary *timing* on this machine: the value exists `conversion_latency`
    /// cycles before its 2's-complement form does.
    ///
    /// Follows Table 3: on the RB machines, integer arithmetic, compares,
    /// conditional moves, byte manipulation and left shifts are listed as
    /// `L (L+2)`; multiplies, right shifts, logicals and loads produce TC
    /// directly.
    pub fn result_is_rb(&self, op: Opcode) -> bool {
        if !self.model.is_rb() || !op.writes_dest() {
            return false;
        }
        match latency_class(op) {
            LatencyClass::IntArith
            | LatencyClass::IntCompare
            | LatencyClass::ByteManip
            | LatencyClass::ShiftLeft => true,
            LatencyClass::IntMul => false, // converter folded into the pipeline (Table 3: "10")
            _ => false,
        }
    }

    /// The *format category* of a result for the Figure 13 bypass-case
    /// accounting: redundant producers are the Table 1 RB-output rows.
    pub fn format_category_is_rb(&self, op: Opcode) -> bool {
        self.model.is_rb() && output_format(op) == Some(ValueFormat::Rb)
    }

    /// Folds every timing-relevant field into `h` in canonical order.
    ///
    /// This is the [`MachineConfig`] half of the serving layer's
    /// content-addressed cache key; see [`crate::hash`] for the stability
    /// contract. Every field of the struct is absorbed — two configurations
    /// hash equal iff they are `==`. Fields added after the original
    /// layout ([`MachineConfig::rb_rf_only`]) are folded only when they
    /// differ from their default, so every pre-existing pinned hash
    /// (`tests/golden/canonical_hashes.json`) is preserved.
    pub fn fold_canonical(&self, h: &mut Fnv64) {
        h.write_tag(0xA0); // domain tag: MachineConfig
        h.write_tag(self.model.canonical_tag());
        h.write_usize(self.width);
        h.write_usize(self.front_width);
        h.write_usize(self.window);
        h.write_usize(self.schedulers);
        h.write_usize(self.clusters);
        h.write_u64(self.cluster_delay);
        h.write_usize(self.rob);
        h.write_bool(self.bypass.l1);
        h.write_bool(self.bypass.l2);
        h.write_bool(self.bypass.l3);
        h.write_u64(self.front_latency);
        h.write_u64(self.sched_to_exec);
        h.write_usize(self.fetch_blocks);
        h.write_usize(self.fetch_queue);
        h.write_u64(self.conversion_latency);
        for &(a, b, c, d) in [&self.icache, &self.dcache] {
            h.write_usize(a).write_usize(b).write_usize(c).write_u64(d);
        }
        let (a, b, c, d, e, f) = self.l2;
        h.write_usize(a).write_usize(b).write_usize(c);
        h.write_u64(d).write_usize(e).write_u64(f);
        let (a, b, c) = self.memory;
        h.write_u64(a).write_usize(b).write_u64(c);
        h.write_tag(match self.steering {
            SteeringPolicy::RoundRobinPairs => 0,
            SteeringPolicy::DependenceAware => 1,
        });
        h.write_tag(match self.datapath {
            DatapathMode::Fast => 0,
            DatapathMode::Faithful => 1,
        });
        h.write_u64(self.max_cycles);
        if self.rb_rf_only {
            h.write_tag(0xA1); // domain tag: post-v1 extension fields
            h.write_bool(true);
        }
    }

    /// A stable, platform-independent FNV-1a fingerprint of this machine
    /// configuration (all fields, canonical order).
    pub fn canonical_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        self.fold_canonical(&mut h);
        h.finish()
    }
}

/// A structurally invalid [`MachineConfig`] request, from
/// [`MachineConfigBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The paper studies 4- and 8-wide machines only.
    UnsupportedWidth(usize),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::UnsupportedWidth(w) => {
                write!(f, "unsupported machine width {w}: the paper studies 4- and 8-wide")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Checked builder from [`MachineConfig::builder`]: collects the same
/// modifiers as the `with_*` methods but never panics — structural
/// problems surface as a [`ConfigError`] from [`build`](Self::build).
///
/// The modifiers only restyle fields that existed in the original layout,
/// so a built configuration hashes identically to the equivalent
/// preset-plus-`with_*` chain (the pinned manifest in
/// `tests/golden/canonical_hashes.json` stays valid).
#[derive(Debug, Clone)]
pub struct MachineConfigBuilder {
    width: usize,
    cfg: Option<MachineConfig>,
}

impl MachineConfigBuilder {
    fn map(mut self, f: impl FnOnce(MachineConfig) -> MachineConfig) -> Self {
        self.cfg = self.cfg.take().map(f);
        self
    }

    /// Replace the bypass-level configuration (Figure 14).
    #[must_use]
    pub fn bypass(self, bypass: BypassLevels) -> Self {
        self.map(|c| c.with_bypass(bypass))
    }

    /// Select the datapath fidelity mode.
    #[must_use]
    pub fn datapath(self, mode: DatapathMode) -> Self {
        self.map(|c| c.with_datapath(mode))
    }

    /// Replace the scheduler steering policy.
    #[must_use]
    pub fn steering(self, steering: SteeringPolicy) -> Self {
        self.map(|c| c.with_steering(steering))
    }

    /// Drop the 2's-complement write-back path (deliberately unsound on
    /// RB machines; see [`MachineConfig::rb_rf_only`]).
    #[must_use]
    pub fn rb_rf_only(self) -> Self {
        self.map(MachineConfig::with_rb_rf_only)
    }

    /// Set the run-away cycle limit (0 disables it).
    #[must_use]
    pub fn max_cycles(self, max_cycles: u64) -> Self {
        self.map(|mut c| {
            c.max_cycles = max_cycles;
            c
        })
    }

    /// Finishes construction.
    ///
    /// # Errors
    ///
    /// [`ConfigError::UnsupportedWidth`] when the requested width is
    /// neither 4 nor 8.
    pub fn build(self) -> Result<MachineConfig, ConfigError> {
        self.cfg.ok_or(ConfigError::UnsupportedWidth(self.width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_partitions_match_the_paper() {
        let m8 = MachineConfig::ideal(8);
        assert_eq!(m8.schedulers, 4);
        assert_eq!(m8.entries_per_scheduler(), 32);
        assert_eq!(m8.clusters, 2);
        assert_eq!(m8.cluster_of(0), 0);
        assert_eq!(m8.cluster_of(1), 0);
        assert_eq!(m8.cluster_of(2), 1);
        assert_eq!(m8.cluster_of(3), 1);
        let m4 = MachineConfig::ideal(4);
        assert_eq!(m4.schedulers, 2);
        assert_eq!(m4.entries_per_scheduler(), 64);
        assert_eq!(m4.clusters, 1);
        assert_eq!(m4.cluster_of(1), 0);
    }

    #[test]
    #[should_panic(expected = "4- and 8-wide")]
    fn rejects_odd_widths() {
        let _ = MachineConfig::ideal(6);
    }

    #[test]
    fn builder_rejects_odd_widths_without_panicking() {
        let err = MachineConfig::builder(CoreModel::Ideal, 6).build().unwrap_err();
        assert_eq!(err, ConfigError::UnsupportedWidth(6));
        assert!(err.to_string().contains("width 6"));
        // Modifiers on a doomed builder stay inert.
        let err = MachineConfig::builder(CoreModel::RbFull, 0)
            .datapath(DatapathMode::Faithful)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::UnsupportedWidth(0));
    }

    #[test]
    fn builder_matches_preset_chain_and_hash() {
        let built = MachineConfig::builder(CoreModel::RbLimited, 8)
            .datapath(DatapathMode::Faithful)
            .steering(SteeringPolicy::DependenceAware)
            .max_cycles(500)
            .build()
            .expect("valid width");
        let mut chained = MachineConfig::rb_limited(8)
            .with_datapath(DatapathMode::Faithful)
            .with_steering(SteeringPolicy::DependenceAware);
        chained.max_cycles = 500;
        assert_eq!(built, chained);
        assert_eq!(built.canonical_hash(), chained.canonical_hash());
    }

    #[test]
    fn builder_carries_the_unsound_escape_hatch() {
        let cfg = MachineConfig::builder(CoreModel::RbLimited, 4)
            .rb_rf_only()
            .bypass(BypassLevels::without(&[3]))
            .build()
            .expect("structurally fine; soundness is the analyzer's job");
        assert!(cfg.rb_rf_only);
    }

    #[test]
    fn table3_latencies() {
        let base = MachineConfig::baseline(8);
        let rb = MachineConfig::rb_full(8);
        let ideal = MachineConfig::ideal(8);
        assert_eq!(base.exec_latency(Opcode::Addq), 2);
        assert_eq!(rb.exec_latency(Opcode::Addq), 1);
        assert_eq!(ideal.exec_latency(Opcode::Addq), 1);
        for m in [&base, &rb, &ideal] {
            assert_eq!(m.exec_latency(Opcode::And), 1);
            assert_eq!(m.exec_latency(Opcode::Sll), 3);
            assert_eq!(m.exec_latency(Opcode::Srl), 3);
            assert_eq!(m.exec_latency(Opcode::Mulq), 10);
            assert_eq!(m.exec_latency(Opcode::Fadd), 8);
            assert_eq!(m.exec_latency(Opcode::Fdiv), 32);
            assert_eq!(m.exec_latency(Opcode::Ldq), 1);
        }
        assert_eq!(base.exec_latency(Opcode::Cmplt), 2);
        assert_eq!(rb.exec_latency(Opcode::Cmplt), 1);
    }

    #[test]
    fn rb_results_only_on_rb_machines() {
        let rb = MachineConfig::rb_limited(4);
        let ideal = MachineConfig::ideal(4);
        assert!(rb.result_is_rb(Opcode::Addq));
        assert!(rb.result_is_rb(Opcode::Sll));
        assert!(rb.result_is_rb(Opcode::Cmplt));
        assert!(!rb.result_is_rb(Opcode::And));
        assert!(!rb.result_is_rb(Opcode::Ldq));
        assert!(!rb.result_is_rb(Opcode::Mulq));
        assert!(!rb.result_is_rb(Opcode::Srl));
        assert!(!ideal.result_is_rb(Opcode::Addq));
    }

    #[test]
    fn bypass_labels() {
        assert_eq!(BypassLevels::FULL.label(), "Full");
        assert_eq!(BypassLevels::without(&[1]).label(), "No-1");
        assert_eq!(BypassLevels::without(&[1, 2]).label(), "No-1,2");
        assert_eq!(BypassLevels::without(&[2, 3]).label(), "No-2,3");
        assert!(BypassLevels::without(&[2]).has(1));
        assert!(!BypassLevels::without(&[2]).has(2));
    }

    #[test]
    fn canonical_hash_tracks_equality() {
        let a = MachineConfig::rb_full(8);
        let b = MachineConfig::rb_full(8);
        assert_eq!(a, b);
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn canonical_hash_changes_on_any_field_flip() {
        let base = MachineConfig::ideal(8);
        let h0 = base.canonical_hash();
        let mut seen = std::collections::HashSet::new();
        seen.insert(h0);
        let variants: Vec<MachineConfig> = vec![
            MachineConfig::baseline(8),
            MachineConfig::rb_limited(8),
            MachineConfig::rb_full(8),
            MachineConfig::ideal(4),
            {
                let mut c = base.clone();
                c.window = 256;
                c
            },
            {
                let mut c = base.clone();
                c.cluster_delay = 2;
                c
            },
            {
                let mut c = base.clone();
                c.conversion_latency = 3;
                c
            },
            base.clone().with_bypass(BypassLevels::without(&[2])),
            base.clone().with_steering(SteeringPolicy::DependenceAware),
            base.clone().with_datapath(DatapathMode::Faithful),
            {
                let mut c = base.clone();
                c.dcache.0 *= 2;
                c
            },
            {
                let mut c = base.clone();
                c.memory.0 = 200;
                c
            },
            {
                let mut c = base.clone();
                c.max_cycles = 1;
                c
            },
            base.clone().with_rb_rf_only(),
        ];
        for v in variants {
            assert!(
                seen.insert(v.canonical_hash()),
                "hash collision for variant {v:?}"
            );
        }
    }

    #[test]
    fn canonical_hash_is_stable_across_threads() {
        let cfg = MachineConfig::rb_limited(4);
        let expected = cfg.canonical_hash();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = cfg.clone();
                std::thread::spawn(move || c.canonical_hash())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("thread"), expected);
        }
    }

    #[test]
    fn model_names() {
        assert_eq!(CoreModel::all().len(), 4);
        assert_eq!(CoreModel::RbLimited.to_string(), "RB-limited");
        assert!(CoreModel::RbFull.is_rb());
        assert!(!CoreModel::Ideal.is_rb());
    }
}
