//! The out-of-order pipeline: fetch, dispatch, wakeup/select, execute,
//! and retire.

use std::collections::VecDeque;

use redbin_isa::format::{input_req, InputReq};
use redbin_isa::{Opcode, Program, StepError};

use crate::bpred::BranchPredictor;
use crate::bypass::{BypassModel, ResultTiming, UnavailableReason};
use crate::cache::{MemoryHierarchy, ServedBy};
use crate::config::{MachineConfig, SteeringPolicy};
use crate::lsq::{LoadDecision, StoreQueue};
use crate::observer::{NoopObserver, RetireEvent, SimObserver, Stage, TraceObserver};
use crate::oracle::{DynInst, Oracle};
use crate::stats::{BypassCase, SimStats, StallCause};
use crate::trace::PipelineTrace;

/// Errors a simulation can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The architectural oracle faulted (pc out of range — a bad program).
    Oracle(StepError),
    /// The run exceeded the configured cycle limit.
    CycleLimit(u64),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Oracle(e) => write!(f, "oracle fault: {e}"),
            SimError::CycleLimit(c) => write!(f, "exceeded cycle limit {c}"),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// In the window, waiting for operands.
    Waiting,
    /// Selected; executing / executed.
    Issued,
}

/// One source operand as seen by the scheduler.
#[derive(Debug, Clone, Copy)]
struct Src {
    /// The dynamic seq of the producing instruction, if it was in flight at
    /// dispatch (otherwise the value comes from the register file).
    producer: Option<u64>,
    /// Whether this operand must be 2's complement.
    need_tc: bool,
}

/// The issue-gating sources of one entry, stored inline: an instruction
/// reads at most three registers, so the hot loop never chases a heap
/// allocation (the scheduler previously allocated a `Vec<Src>` per
/// dispatched instruction and cloned it per issued one).
#[derive(Debug, Clone, Copy)]
struct SrcList {
    srcs: [Src; 3],
    len: u8,
}

impl SrcList {
    fn new() -> Self {
        SrcList {
            srcs: [Src {
                producer: None,
                need_tc: false,
            }; 3],
            len: 0,
        }
    }

    fn push(&mut self, s: Src) {
        debug_assert!((self.len as usize) < self.srcs.len(), "over capacity");
        if let Some(slot) = self.srcs.get_mut(self.len as usize) {
            *slot = s;
            self.len += 1;
        }
    }

    fn as_slice(&self) -> &[Src] {
        &self.srcs[..self.len as usize]
    }

    fn get(&self, idx: u8) -> Option<Src> {
        self.as_slice().get(idx as usize).copied()
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[derive(Debug, Clone)]
struct InFlight {
    d: DynInst,
    scheduler: usize,
    cluster: usize,
    state: State,
    /// Issue-gating source operands (for stores: the base register only).
    srcs: SrcList,
    /// Gating sources still sleeping on an unissued producer. The entry
    /// enters its scheduler's candidate list when this reaches zero.
    wait_count: u8,
    /// Wakeup floor: no evaluation can succeed for an execution starting
    /// before this cycle (the max of the issued producers' earliest
    /// availability; 0 means "evaluate every cycle").
    min_ready: u64,
    /// Consumers sleeping on this entry's result as (consumer seq, source
    /// index) pairs, woken when this entry issues and its timing lands.
    waiters: Vec<(u64, u8)>,
    /// For stores: the data operand's producer, resolved separately.
    store_data_producer: Option<u64>,
    store_data_time: Option<u64>,
    dispatch_cycle: u64,
    fetch_cycle: u64,
    issue_cycle: u64,
    exec_start: u64,
    exec_end: u64,
    /// Result availability, set at issue for register-writing ops.
    timing: Option<ResultTiming>,
    /// Cycle at which the instruction may retire.
    complete_at: u64,
    mispredicted: bool,
    mem_size: u8,
    /// For issued loads: whether the access missed in the L1 data cache
    /// (used to attribute downstream consumer stalls to `CacheMiss`).
    dcache_miss: bool,
}

struct FetchedInst {
    d: DynInst,
    ready: u64,
    mispredicted: bool,
}

/// The cycle-level simulator. Construct with a [`MachineConfig`] and a
/// program, then [`run`](Simulator::run) it to completion.
pub struct Simulator {
    cfg: MachineConfig,
    oracle: Oracle,
    bypass: BypassModel,
    bpred: BranchPredictor,
    mem: MemoryHierarchy,
    sq: StoreQueue,
    stats: SimStats,

    cycle: u64,
    fetch_resume: u64,
    /// Seq of the unresolved mispredicted branch fetch is waiting on.
    redirect_branch: Option<u64>,
    oracle_done: bool,
    peeked: Option<DynInst>,

    fetch_q: VecDeque<FetchedInst>,
    ring: VecDeque<InFlight>,
    base_seq: u64,
    rs_free: Vec<usize>,
    /// Per-scheduler queues of waiting seqs (oldest first). The
    /// event-driven scheduler leaves issued entries in place as tombstones
    /// (lazy skip + periodic compaction) and uses the queue only to
    /// recover the oldest blocked entry for stall attribution.
    waiting: Vec<VecDeque<u64>>,
    /// Per-scheduler sorted candidate lists: seqs whose gating sources are
    /// all produced (issued or in the register file). The event-driven
    /// scheduler evaluates only these, instead of every waiting entry.
    candidates: Vec<Vec<u64>>,
    /// Dispatched stores whose data operand is not yet resolved — the
    /// persistent replacement for the per-cycle full-ring scan.
    pending_stores: VecDeque<u64>,
    last_writer: [Option<u64>; 32],
    steer_counter: u64,
    /// Set by `dispatch` each cycle: a decoded instruction was ready to
    /// enter the window but the ROB or its reservation stations were full.
    window_blocked: bool,
    /// Run the retained scan-everything reference scheduler instead of the
    /// event-driven one; the differential suite locksteps the two.
    #[cfg(any(test, feature = "reference-sched"))]
    reference_sched: bool,
}

impl Simulator {
    /// Builds a simulator for `program` on the configured machine.
    pub fn new(cfg: MachineConfig, program: &Program) -> Self {
        let oracle = Oracle::new(program, cfg.datapath);
        let bypass = BypassModel::new(&cfg);
        let mem = MemoryHierarchy::new(cfg.icache, cfg.dcache, cfg.l2, cfg.memory);
        let rs_free = vec![cfg.entries_per_scheduler(); cfg.schedulers];
        let waiting = vec![VecDeque::new(); cfg.schedulers];
        let candidates = vec![Vec::new(); cfg.schedulers];
        Simulator {
            cfg,
            oracle,
            bypass,
            bpred: BranchPredictor::new(),
            mem,
            sq: StoreQueue::new(),
            stats: SimStats::default(),
            cycle: 0,
            fetch_resume: 0,
            redirect_branch: None,
            oracle_done: false,
            peeked: None,
            fetch_q: VecDeque::new(),
            ring: VecDeque::new(),
            base_seq: 0,
            rs_free,
            waiting,
            candidates,
            pending_stores: VecDeque::new(),
            last_writer: [None; 32],
            steer_counter: 0,
            window_blocked: false,
            #[cfg(any(test, feature = "reference-sched"))]
            reference_sched: false,
        }
    }

    /// Switches this simulator to the retained reference scheduler — the
    /// original scan-every-waiting-entry implementation the event-driven
    /// wakeup replaced. The two produce bit-identical results (pinned by
    /// the differential suite and the golden snapshots); the reference
    /// exists only as the behavioral spec to test against.
    #[cfg(any(test, feature = "reference-sched"))]
    pub fn with_reference_scheduler(mut self) -> Self {
        self.reference_sched = true;
        self
    }

    /// Whether the reference scheduler drives this run (always false when
    /// the `reference-sched` feature is compiled out).
    #[inline]
    fn is_reference(&self) -> bool {
        #[cfg(any(test, feature = "reference-sched"))]
        {
            self.reference_sched
        }
        #[cfg(not(any(test, feature = "reference-sched")))]
        {
            false
        }
    }

    /// Runs to completion and returns both statistics and the pipeline
    /// trace (Figures 5/7-style diagrams), via a [`TraceObserver`]. Only
    /// use for short programs — the trace grows with every retired
    /// instruction.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Self::run).
    pub fn run_traced(self) -> Result<(SimStats, PipelineTrace), SimError> {
        let mut tracer = TraceObserver::new();
        let stats = self.run_observed(&mut tracer)?;
        Ok((stats, tracer.into_trace()))
    }

    /// Runs to completion and returns the statistics, observing nothing.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Oracle`] if the program faults and
    /// [`SimError::CycleLimit`] if `cfg.max_cycles` (when nonzero) elapses
    /// first.
    pub fn run(self) -> Result<SimStats, SimError> {
        self.run_observed(&mut NoopObserver)
    }

    /// Runs to completion and returns the statistics together with the
    /// final architectural state of the embedded oracle (registers, pc,
    /// memory digest). The timing simulator executes architecturally at
    /// fetch, so this is the state any correct execution of the program
    /// must reach — the differential suites compare it against a pure
    /// [`redbin_isa::Emulator`] run.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Self::run).
    pub fn run_with_arch(mut self) -> Result<(SimStats, redbin_isa::ArchState), SimError> {
        self.run_loop(&mut NoopObserver)?;
        let stats = self.finish_stats();
        Ok((stats, self.oracle.arch_state()))
    }

    /// The single run path: every simulation — plain stats, tracing,
    /// telemetry — goes through here with a different [`SimObserver`].
    /// The observer is a pure listener; the returned [`SimStats`] are
    /// identical for every observer (pinned by the golden snapshots and
    /// the observer-equivalence tests).
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Self::run).
    pub fn run_observed<O: SimObserver>(mut self, obs: &mut O) -> Result<SimStats, SimError> {
        self.run_loop(obs)?;
        Ok(self.finish_stats())
    }

    fn run_loop<O: SimObserver>(&mut self, obs: &mut O) -> Result<(), SimError> {
        loop {
            self.cycle += 1;
            if self.cfg.max_cycles != 0 && self.cycle > self.cfg.max_cycles {
                return Err(SimError::CycleLimit(self.cfg.max_cycles));
            }
            obs.on_cycle(self.cycle);
            self.retire(obs);
            self.dispatch(obs);
            self.issue(obs);
            obs.on_stage(Stage::Execute, self.ring.len());
            self.fetch(obs)?;
            if self.oracle_done
                && self.peeked.is_none()
                && self.fetch_q.is_empty()
                && self.ring.is_empty()
            {
                return Ok(());
            }
        }
    }

    fn finish_stats(&mut self) -> SimStats {
        self.stats.cycles = self.cycle;
        self.stats.width = self.cfg.width as u64;
        self.stats.fidelity_checks = self.oracle.fidelity_checks();
        self.stats.icache_misses = self.mem.l1i.misses();
        self.stats.dcache_accesses = self.mem.l1d.accesses();
        self.stats.dcache_misses = self.mem.l1d.misses();
        let (h, m) = self.mem.l2_counts();
        self.stats.l2_hits = h;
        self.stats.l2_misses = m;
        let (fwd, blk) = self.sq.counters();
        self.stats.store_forwards = fwd;
        self.stats.load_blocks = blk;
        std::mem::take(&mut self.stats)
    }

    // ---- pipeline front ----------------------------------------------------

    fn peek_oracle(&mut self) -> Result<Option<DynInst>, SimError> {
        if self.peeked.is_none() && !self.oracle_done {
            match self.oracle.next().map_err(SimError::Oracle)? {
                Some(d) => self.peeked = Some(d),
                None => self.oracle_done = true,
            }
        }
        Ok(self.peeked)
    }

    fn fetch<O: SimObserver>(&mut self, obs: &mut O) -> Result<(), SimError> {
        if self.cycle < self.fetch_resume || self.redirect_branch.is_some() {
            return Ok(());
        }
        let mut fetched = 0usize;
        let mut blocks = 0usize;
        let mut cur_line: Option<u64> = None;
        while fetched < self.cfg.front_width
            && blocks < self.cfg.fetch_blocks
            && self.fetch_q.len() < self.cfg.fetch_queue
        {
            let Some(d) = self.peek_oracle()? else { break };
            // Instruction cache: one probe per distinct line per group.
            let line_addr = (d.pc as u64 * 4) & !(self.mem.l1i.line_bytes() as u64 - 1);
            if cur_line != Some(line_addr) {
                let (t, served) = self.mem.access_inst(line_addr, self.cycle);
                if served != ServedBy::L1 {
                    // Miss: stall fetch until the fill returns; the line is
                    // now resident so the retry hits.
                    self.fetch_resume = t;
                    break;
                }
                cur_line = Some(line_addr);
            }
            self.peeked = None;
            fetched += 1;

            let mut mispredicted = false;
            if d.inst.op.is_control() {
                let actual_taken = d.taken.unwrap_or(false);
                let static_target = match d.inst.op {
                    Opcode::Jmp | Opcode::Ret => None,
                    _ => Some((d.pc as i64 + 1 + d.inst.disp) as usize),
                };
                let pred = self.bpred.predict_and_update(
                    d.pc,
                    d.inst.op,
                    actual_taken,
                    d.next_pc,
                    static_target,
                );
                if d.inst.op.is_conditional_branch() {
                    self.stats.branches += 1;
                }
                mispredicted = pred.taken != actual_taken
                    || (actual_taken && pred.target != Some(d.next_pc));
                blocks += 1;
            }

            self.fetch_q.push_back(FetchedInst {
                d,
                ready: self.cycle + self.cfg.front_latency,
                mispredicted,
            });

            if mispredicted {
                self.stats.mispredicts += 1;
                self.redirect_branch = Some(d.seq);
                self.fetch_resume = u64::MAX; // set when the branch resolves
                break;
            }
        }
        self.stats.fetch_hist[fetched.min(8)] += 1;
        obs.on_stage(Stage::Fetch, fetched);
        Ok(())
    }

    // ---- dispatch ----------------------------------------------------------

    fn dispatch<O: SimObserver>(&mut self, obs: &mut O) {
        let mut dispatched = 0usize;
        self.window_blocked = false;
        while dispatched < self.cfg.front_width {
            let Some(front) = self.fetch_q.front() else { break };
            if front.ready > self.cycle {
                break;
            }
            if self.ring.len() >= self.cfg.rob {
                self.window_blocked = true;
                break;
            }
            let scheduler = match self.cfg.steering {
                SteeringPolicy::RoundRobinPairs => {
                    ((self.steer_counter / 2) % self.cfg.schedulers as u64) as usize
                }
                SteeringPolicy::DependenceAware => self.steer_by_dependence(&front.d),
            };
            if self.rs_free[scheduler] == 0 {
                self.window_blocked = true;
                break;
            }
            let Some(f) = self.fetch_q.pop_front() else { break };
            self.steer_counter += 1;
            self.rs_free[scheduler] -= 1;
            let cluster = self.cfg.cluster_of(scheduler);
            let d = f.d;

            // Rename: resolve producers for the issue-gating sources.
            let op = d.inst.op;
            let mut srcs = SrcList::new();
            let data_reg = if op.is_store() {
                // The base register gates issue; the data operand is
                // tracked separately and resolved via the store queue.
                if !d.inst.ra.is_zero_reg() {
                    srcs.push(Src {
                        producer: self.last_writer[d.inst.ra.index()],
                        need_tc: input_req(op, 0) == InputReq::TcOnly,
                    });
                }
                (!d.inst.rc.is_zero_reg()).then_some(d.inst.rc)
            } else {
                for (idx, r) in d.inst.source_regs().iter().enumerate() {
                    srcs.push(Src {
                        producer: self.last_writer[r.index()],
                        need_tc: input_req(op, idx) == InputReq::TcOnly,
                    });
                }
                None
            };
            let store_data_producer = data_reg.and_then(|r| self.last_writer[r.index()]);

            // Event-driven wakeup bookkeeping: sleep on producers that have
            // not issued yet; fold issued producers' earliest availability
            // into the entry's wakeup floor.
            let mut wait_count = 0u8;
            let mut min_ready = 0u64;
            for (idx, src) in srcs.as_slice().iter().enumerate() {
                let Some(p) = src.producer else { continue };
                let timing = match self.entry(p) {
                    None => continue, // retired: value in the register file
                    Some(prod) => prod.timing,
                };
                match timing {
                    Some(r) => {
                        let at = self.bypass.earliest(&r, src.need_tc, cluster, 0);
                        if at != u64::MAX {
                            min_ready = min_ready.max(at);
                        }
                    }
                    None => {
                        if let Some(prod) = self.entry_mut(p) {
                            prod.waiters.push((d.seq, idx as u8));
                            wait_count += 1;
                        }
                    }
                }
            }

            if let Some(dest) = d.inst.dest() {
                self.last_writer[dest.index()] = Some(d.seq);
            }
            if op.is_store() {
                self.sq.dispatch(d.seq);
            }

            let mem_size = match op {
                Opcode::Ldq | Opcode::Stq => 8,
                Opcode::Ldl | Opcode::Stl => 4,
                Opcode::Ldbu | Opcode::Stb => 1,
                _ => 0,
            };

            let entry = InFlight {
                d,
                scheduler,
                cluster,
                state: State::Waiting,
                srcs,
                wait_count,
                min_ready,
                waiters: Vec::new(),
                store_data_producer,
                store_data_time: if op.is_store() && data_reg.is_none() {
                    Some(self.cycle) // data is r31 (zero): always ready
                } else {
                    None
                },
                dispatch_cycle: self.cycle,
                fetch_cycle: f.ready - self.cfg.front_latency,
                issue_cycle: 0,
                exec_start: 0,
                exec_end: 0,
                timing: None,
                complete_at: u64::MAX,
                mispredicted: f.mispredicted,
                mem_size,
                dcache_miss: false,
            };
            debug_assert_eq!(self.base_seq + self.ring.len() as u64, d.seq);
            self.ring.push_back(entry);
            self.waiting[scheduler].push_back(d.seq);
            if wait_count == 0 && !self.is_reference() {
                self.insert_candidate(scheduler, d.seq);
            }
            if op.is_store() && data_reg.is_some() {
                self.pending_stores.push_back(d.seq);
            }
            dispatched += 1;
        }
        self.stats.dispatch_hist[dispatched.min(8)] += 1;
        obs.on_stage(Stage::Rename, dispatched);
    }

    /// Dependence-aware steering: on a clustered machine, place each
    /// instruction in its youngest in-flight producer's *cluster* (so the
    /// forwarding stays local), picking the scheduler with the most free
    /// entries inside that cluster. On a single-cluster machine every
    /// scheduler forwards identically, so this degenerates to round-robin
    /// (chasing producers there only unbalances the window).
    fn steer_by_dependence(&self, d: &DynInst) -> usize {
        let rr = ((self.steer_counter / 2) % self.cfg.schedulers as u64) as usize;
        if self.cfg.clusters <= 1 {
            return rr;
        }
        let preferred_cluster = d
            .inst
            .source_regs()
            .iter()
            .filter_map(|r| self.last_writer[r.index()])
            .max()
            .and_then(|p| self.entry(p))
            .map(|e| e.cluster);
        if let Some(c) = preferred_cluster {
            if let Some(s) = (0..self.cfg.schedulers)
                .filter(|s| self.cfg.cluster_of(*s) == c && self.rs_free[*s] > 0)
                .max_by_key(|s| self.rs_free[*s])
            {
                return s;
            }
        }
        (0..self.cfg.schedulers)
            .map(|k| (rr + k) % self.cfg.schedulers)
            .find(|s| self.rs_free[*s] > 0)
            .unwrap_or(rr)
    }

    // ---- wakeup / select / execute ------------------------------------------

    fn entry(&self, seq: u64) -> Option<&InFlight> {
        let idx = seq.checked_sub(self.base_seq)? as usize;
        self.ring.get(idx)
    }

    fn entry_mut(&mut self, seq: u64) -> Option<&mut InFlight> {
        let idx = seq.checked_sub(self.base_seq)? as usize;
        self.ring.get_mut(idx)
    }

    /// Is the operand available for an execution starting at `e`?
    /// `None` producer (register file) is always available.
    fn operand_available(&self, src: &Src, cluster: usize, e: u64) -> bool {
        let Some(p) = src.producer else { return true };
        match self.entry(p) {
            None => true, // producer retired: value in the register file
            Some(prod) => match &prod.timing {
                None => false, // not yet issued
                Some(r) => self.bypass.available(r, src.need_tc, cluster, e),
            },
        }
    }

    fn resolve_store_data(&mut self, seq: u64) {
        let Some(e) = self.entry(seq) else { return };
        if e.store_data_time.is_some() {
            return;
        }
        let resolved = match e.store_data_producer {
            None => Some(e.dispatch_cycle),
            Some(p) => match self.entry(p) {
                None => Some(self.cycle), // producer retired; data in RF now
                Some(prod) => prod.timing.as_ref().map(|r| {
                    // Earliest cycle the store queue can latch the TC form.
                    self.bypass.earliest(r, true, e.cluster, 0)
                }),
            },
        };
        if let Some(t) = resolved {
            if let Some(em) = self.entry_mut(seq) {
                em.store_data_time = Some(t);
            }
            self.sq.set_data_time(seq, t);
        }
    }

    /// Retries the stores whose data operand is still outstanding. The
    /// queue is maintained at dispatch and drained as stores resolve or
    /// retire, replacing the previous per-cycle full-ring scan (which
    /// allocated a fresh seq vector even with no stores in flight).
    fn resolve_pending_stores(&mut self) {
        for _ in 0..self.pending_stores.len() {
            let Some(seq) = self.pending_stores.pop_front() else { break };
            self.resolve_store_data(seq);
            let unresolved = matches!(
                self.entry(seq),
                Some(en) if en.store_data_time.is_none()
            );
            if unresolved {
                // Rotate to the back: one pass visits each pending store
                // exactly once and preserves seq order.
                self.pending_stores.push_back(seq);
            }
        }
    }

    fn issue<O: SimObserver>(&mut self, obs: &mut O) {
        // Resolve pending store data lazily each cycle.
        self.resolve_pending_stores();
        if self.is_reference() {
            #[cfg(any(test, feature = "reference-sched"))]
            self.issue_reference(obs);
            return;
        }
        self.issue_event(obs);
    }

    /// Event-driven wakeup/select. Instead of evaluating every waiting
    /// entry every cycle, each scheduler keeps a sorted candidate list an
    /// entry enters only once its last sleeping producer issues (`wake`),
    /// and candidates below their wakeup floor (`min_ready`) are skipped
    /// without touching the bypass network. Skips are sound because both
    /// conditions prove at least one operand unavailable, and the
    /// side-effecting store-queue probe (`check_load`) only ever runs once
    /// all register operands are available — so the evaluation sequence,
    /// issue picks, and stall attribution are bit-identical to
    /// `issue_reference` (pinned by the differential suite).
    fn issue_event<O: SimObserver>(&mut self, obs: &mut O) {
        let e = self.cycle + self.cfg.sched_to_exec;
        let mut issued_count = 0usize;
        let mut any_issued = false;
        // Cause charged to slots a scheduler leaves unused because it has
        // nothing waiting at all: the window is the bottleneck if dispatch
        // was blocked this cycle, otherwise the front end is.
        let upstream = if self.window_blocked {
            StallCause::WindowFull
        } else {
            StallCause::FetchStarved
        };
        for s in 0..self.cfg.schedulers {
            self.compact_waiting(s);
            let mut picked = 0usize;
            // Seq of the second pick: the reference scan stops right after
            // it, so no younger entry can be "the blocked one".
            let mut second_pick = u64::MAX;
            // Oldest candidate evaluated and found not ready, and whether
            // the store queue (rather than an operand) held it back.
            let mut first_unready: Option<(u64, bool)> = None;
            let mut i = 0;
            while picked < 2 {
                let Some(&seq) = self.candidates[s].get(i) else { break };
                let Some(entry) = self.entry(seq) else {
                    self.candidates[s].remove(i);
                    continue;
                };
                if entry.state != State::Waiting {
                    self.candidates[s].remove(i);
                    continue;
                }
                if entry.min_ready > e {
                    i += 1;
                    continue;
                }
                let cluster = entry.cluster;
                let is_load = entry.d.inst.op.is_load();
                let addr = entry.d.ea;
                let size = entry.mem_size;
                let mut ready = entry
                    .srcs
                    .as_slice()
                    .iter()
                    .all(|src| self.operand_available(src, cluster, e));
                let mut load_decision = LoadDecision::Cache;
                let mut lsq_blocked = false;
                if ready && is_load {
                    debug_assert!(addr.is_some(), "load has an address");
                    load_decision = self.sq.check_load(seq, addr.unwrap_or_default(), size, e);
                    if load_decision == LoadDecision::Blocked {
                        ready = false;
                        lsq_blocked = true;
                    }
                }
                if ready {
                    issued_count += 1;
                    picked += 1;
                    // Remove before issuing: `issue_one` may wake a
                    // consumer into this very list, always at a position
                    // after `i` (consumers are younger than the issuer, and
                    // the list is sorted), so it gets scanned this cycle —
                    // exactly as the reference scan would reach it.
                    self.candidates[s].remove(i);
                    // `check_load` counters are already bumped; carry the
                    // decision so issue_one does not probe the queue again.
                    self.issue_one(seq, e, load_decision, obs);
                    any_issued = true;
                    if picked == 2 {
                        second_pick = seq;
                    }
                    continue;
                }
                if first_unready.is_none() {
                    first_unready = Some((seq, lsq_blocked));
                }
                i += 1;
            }
            // Stall accounting: each scheduler owns 2 of the machine's
            // `width` issue slots every cycle; charge the unused ones.
            let unused = 2u64.saturating_sub(picked as u64);
            if unused > 0 {
                let cause = match self.oldest_blocked(s, second_pick, first_unready) {
                    Some((seq, lsq)) => self.stall_cause_of(seq, lsq, e),
                    None => upstream,
                };
                self.stats.stall.charge(cause, unused);
            }
        }
        self.stats.stall.used += issued_count as u64;
        if !any_issued && !self.ring.is_empty() {
            self.stats.idle_issue_cycles += 1;
        }
        self.stats.issue_hist[issued_count.min(8)] += 1;
        obs.on_stage(Stage::Issue, issued_count);
    }

    /// Recovers the reference scan's `blocked` value from the waiting
    /// queue: the oldest still-waiting entry of scheduler `s`, provided
    /// the scan would have reached it before stopping at the second pick.
    /// Every older entry already issued, so that oldest entry is exactly
    /// the first not-ready entry the reference scan records; it was held
    /// by the store queue only if this cycle's candidate evaluation said
    /// so (`first_unready`) — an entry skipped as a non-candidate has, by
    /// construction, an unavailable register operand, which the reference
    /// discovers before ever probing the store queue.
    fn oldest_blocked(
        &mut self,
        s: usize,
        second_pick: u64,
        first_unready: Option<(u64, bool)>,
    ) -> Option<(u64, bool)> {
        // Lazily drop issued/retired tombstones from the front.
        while let Some(&seq) = self.waiting[s].front() {
            match self.entry(seq) {
                Some(en) if en.state == State::Waiting => break,
                _ => {
                    self.waiting[s].pop_front();
                }
            }
        }
        let w = *self.waiting[s].front()?;
        if w >= second_pick {
            return None;
        }
        let lsq = match first_unready {
            Some((f, l)) if f == w => l,
            _ => false,
        };
        Some((w, lsq))
    }

    /// Sweeps issued tombstones out of scheduler `s`'s waiting queue once
    /// they outnumber the live entries. The reference scheduler instead
    /// called `VecDeque::remove` on every issue, shifting the tail each
    /// time — O(window²) in the worst cycle.
    fn compact_waiting(&mut self, s: usize) {
        let live = self
            .cfg
            .entries_per_scheduler()
            .saturating_sub(self.rs_free.get(s).copied().unwrap_or(0));
        let Some(q) = self.waiting.get(s) else { return };
        if q.len() <= 2 * live + 8 {
            return;
        }
        let mut q = std::mem::take(&mut self.waiting[s]);
        q.retain(|&seq| matches!(self.entry(seq), Some(en) if en.state == State::Waiting));
        self.waiting[s] = q;
    }

    /// Inserts `seq` into scheduler `s`'s candidate list, keeping it
    /// sorted (idempotent): selection must stay oldest-first to match the
    /// reference scheduler's scan order.
    fn insert_candidate(&mut self, s: usize, seq: u64) {
        let Some(v) = self.candidates.get_mut(s) else { return };
        if let Err(pos) = v.binary_search(&seq) {
            v.insert(pos, seq);
        }
    }

    /// Wakes one sleeping source of `cseq`: folds the freshly issued
    /// producer's earliest availability into the consumer's wakeup floor
    /// and, when this was the last outstanding producer, enters the
    /// consumer into its scheduler's candidate list. A producer whose
    /// result is statically unreachable for this consumer (`earliest` has
    /// no answer) contributes floor 0 — the consumer is then evaluated
    /// every cycle, exactly as the reference scan does, and issues once
    /// the producer retires to the register file.
    fn wake(&mut self, cseq: u64, src_idx: u8, timing: Option<ResultTiming>) {
        let Some(c) = self.entry(cseq) else { return };
        debug_assert_eq!(c.state, State::Waiting, "sleeping consumers cannot issue");
        let (cluster, scheduler) = (c.cluster, c.scheduler);
        let need_tc = c.srcs.get(src_idx).is_some_and(|s| s.need_tc);
        let floor = match timing {
            Some(r) => match self.bypass.earliest(&r, need_tc, cluster, 0) {
                u64::MAX => 0,
                at => at,
            },
            None => 0,
        };
        let Some(cm) = self.entry_mut(cseq) else { return };
        cm.min_ready = cm.min_ready.max(floor);
        cm.wait_count = cm.wait_count.saturating_sub(1);
        if cm.wait_count == 0 && !self.is_reference() {
            self.insert_candidate(scheduler, cseq);
        }
    }

    /// The retained reference scheduler: scan every waiting entry, oldest
    /// first, with eager `VecDeque::remove`. This is the behavioral spec
    /// the event-driven scheduler is differentially tested against (see
    /// [`with_reference_scheduler`](Self::with_reference_scheduler));
    /// compiled out of production builds unless the `reference-sched`
    /// feature is enabled.
    #[cfg(any(test, feature = "reference-sched"))]
    fn issue_reference<O: SimObserver>(&mut self, obs: &mut O) {
        let e = self.cycle + self.cfg.sched_to_exec;
        let mut issued_count = 0usize;
        let mut any_issued = false;
        let upstream = if self.window_blocked {
            StallCause::WindowFull
        } else {
            StallCause::FetchStarved
        };
        for s in 0..self.cfg.schedulers {
            let mut picked = 0usize;
            // Oldest entry that could not issue this cycle, and whether the
            // store queue (rather than an operand) held it back.
            let mut blocked: Option<(u64, bool)> = None;
            // Scan waiting entries oldest-first; drop stale (issued) seqs.
            let mut i = 0;
            while i < self.waiting[s].len() && picked < 2 {
                let seq = self.waiting[s][i];
                let Some(entry) = self.entry(seq) else {
                    self.waiting[s].remove(i);
                    continue;
                };
                if entry.state != State::Waiting {
                    self.waiting[s].remove(i);
                    continue;
                }
                let cluster = entry.cluster;
                let mut ready = entry
                    .srcs
                    .as_slice()
                    .iter()
                    .all(|src| self.operand_available(src, cluster, e));
                let mut load_decision = LoadDecision::Cache;
                let mut lsq_blocked = false;
                if ready && entry.d.inst.op.is_load() {
                    debug_assert!(entry.d.ea.is_some(), "load has an address");
                    let addr = entry.d.ea.unwrap_or_default();
                    let size = entry.mem_size;
                    load_decision = self.sq.check_load(seq, addr, size, e);
                    if load_decision == LoadDecision::Blocked {
                        ready = false;
                        lsq_blocked = true;
                    }
                }
                if ready {
                    issued_count += 1;
                    picked += 1;
                    // `check_load` counters are already bumped; carry the
                    // decision so issue_one does not probe the queue again.
                    self.issue_one(seq, e, load_decision, obs);
                    any_issued = true;
                    self.waiting[s].remove(i);
                    continue;
                }
                if blocked.is_none() {
                    blocked = Some((seq, lsq_blocked));
                }
                i += 1;
            }
            // Stall accounting: each scheduler owns 2 of the machine's
            // `width` issue slots every cycle; charge the unused ones.
            let unused = 2u64.saturating_sub(picked as u64);
            if unused > 0 {
                let cause = match blocked {
                    Some((seq, lsq)) => self.stall_cause_of(seq, lsq, e),
                    None => upstream,
                };
                self.stats.stall.charge(cause, unused);
            }
        }
        self.stats.stall.used += issued_count as u64;
        if !any_issued && !self.ring.is_empty() {
            self.stats.idle_issue_cycles += 1;
        }
        self.stats.issue_hist[issued_count.min(8)] += 1;
        obs.on_stage(Stage::Issue, issued_count);
    }

    /// Attributes an unused issue slot: why could the oldest still-waiting
    /// instruction (`seq`) not begin execution at cycle `e`?
    ///
    /// The binding operand is the one that becomes available *latest* — a
    /// slot lost to both a cache miss and a conversion is charged to
    /// whichever constraint releases last.
    fn stall_cause_of(&self, seq: u64, lsq_blocked: bool, e: u64) -> StallCause {
        if lsq_blocked {
            return StallCause::Disambiguation;
        }
        let Some(entry) = self.entry(seq) else {
            return StallCause::OperandWait;
        };
        let mut worst: Option<(u64, StallCause)> = None;
        for src in entry.srcs.as_slice() {
            let Some(p) = src.producer else { continue };
            let Some(prod) = self.entry(p) else { continue };
            let (at, cause) = match &prod.timing {
                // Producer has not itself issued: a pure dependence wait
                // (availability unknown, so it binds over everything).
                None => (u64::MAX, StallCause::OperandWait),
                Some(r) => {
                    let reason =
                        self.bypass.unavailable_reason(r, src.need_tc, entry.cluster, e);
                    let Some(reason) = reason else { continue };
                    let at = self.bypass.earliest(r, src.need_tc, entry.cluster, e);
                    let cause = match reason {
                        UnavailableReason::InFlight => {
                            if prod.d.inst.op.is_load() && prod.dcache_miss {
                                StallCause::CacheMiss
                            } else {
                                StallCause::OperandWait
                            }
                        }
                        UnavailableReason::ConversionWait => StallCause::ConversionWait,
                        UnavailableReason::Hole => StallCause::BypassHole,
                    };
                    (at, cause)
                }
            };
            if worst.is_none_or(|(t, _)| at >= t) {
                worst = Some((at, cause));
            }
        }
        // The fallback covers a same-cycle race: a producer that issued
        // earlier in this very cycle can make the operand look available
        // even though the scan saw it missing.
        worst.map_or(StallCause::OperandWait, |(_, c)| c)
    }

    fn issue_one<O: SimObserver>(
        &mut self,
        seq: u64,
        e: u64,
        load_decision: LoadDecision,
        obs: &mut O,
    ) {
        // Figure 13 accounting first (immutable pass).
        self.record_bypass_stats(seq, e, obs);

        let Some(entry) = self.entry(seq) else {
            debug_assert!(false, "issuing entry exists");
            return;
        };
        let (op, ea, cluster, mem_size, mispredicted, has_dest) = (
            entry.d.inst.op,
            entry.d.ea,
            entry.cluster,
            entry.mem_size,
            entry.mispredicted,
            entry.d.inst.dest().is_some(),
        );
        let lat = self.cfg.exec_latency(op);
        let exec_end = e + lat - 1;

        let mut timing = None;
        let mut complete_at;
        let mut dcache_miss = false;
        if op.is_load() {
            debug_assert!(ea.is_some(), "load has an address");
            let addr = ea.unwrap_or_default();
            let t0 = match load_decision {
                LoadDecision::Forward(t) => t,
                _ => {
                    let (t, served) = self.mem.access_data(addr, e);
                    dcache_miss = served != ServedBy::L1;
                    t
                }
            };
            timing = Some(ResultTiming {
                ready: t0,
                rb: false,
                tc_ready: t0,
                cluster,
            });
            complete_at = t0 + 1;
        } else if op.is_store() {
            debug_assert!(ea.is_some(), "store has an address");
            let addr = ea.unwrap_or_default();
            self.sq.set_address(seq, addr, mem_size, e + 1);
            // Completion is checked at retire (needs data too).
            complete_at = u64::MAX;
        } else {
            let rb = self.cfg.result_is_rb(op);
            let tc_ready = exec_end + if rb { self.cfg.conversion_latency } else { 0 };
            if has_dest {
                timing = Some(ResultTiming {
                    ready: exec_end,
                    rb,
                    tc_ready,
                    cluster,
                });
            }
            complete_at = tc_ready + 1;
        }

        if op.is_control() {
            let resolve = exec_end;
            complete_at = resolve + 1;
            if mispredicted && self.redirect_branch == Some(seq) {
                self.redirect_branch = None;
                self.fetch_resume = resolve + 1;
            }
        }

        let issue_cycle = self.cycle;
        let Some(entry) = self.entry_mut(seq) else { return };
        entry.state = State::Issued;
        entry.dcache_miss = dcache_miss;
        entry.timing = timing;
        entry.complete_at = complete_at;
        entry.issue_cycle = issue_cycle;
        entry.exec_start = e;
        entry.exec_end = exec_end;
        let scheduler = entry.scheduler;
        let waiters = std::mem::take(&mut entry.waiters);
        self.rs_free[scheduler] += 1;
        // The result timing is now known: wake the sleeping consumers.
        for (cseq, idx) in waiters {
            self.wake(cseq, idx, timing);
        }
    }

    fn record_bypass_stats<O: SimObserver>(&mut self, seq: u64, e: u64, obs: &mut O) {
        let Some(entry) = self.entry(seq) else { return };
        if entry.srcs.is_empty() {
            return;
        }
        let cluster = entry.cluster;
        let srcs = entry.srcs; // inline copy: no allocation on the issue path
        let mut any_bypassed = false;
        let mut bypassed_ops = 0u64;
        let mut regfile_ops = 0u64;
        let mut level_counts = [0u64; 3];
        let mut last: Option<(u64, bool, bool)> = None; // (earliest, bypassed, case-rb)
        let mut last_need_tc = false;
        for src in srcs.as_slice() {
            let Some(p) = src.producer else {
                regfile_ops += 1;
                continue;
            };
            let Some(prod) = self.entry(p) else {
                regfile_ops += 1;
                continue;
            };
            let Some(r) = prod.timing.as_ref() else { continue };
            let earliest = self.bypass.earliest(r, src.need_tc, cluster, 0);
            let bypassed = self.bypass.from_bypass(r, src.need_tc, cluster, e);
            if bypassed {
                any_bypassed = true;
                bypassed_ops += 1;
                // Figure 14 attribution: which forwarding level served it.
                if let Some(l) = self.bypass.level_used(r, src.need_tc, cluster, e) {
                    level_counts[(l - 1) as usize] += 1;
                    obs.on_bypass(l, BypassCase::classify(r.rb, src.need_tc));
                }
            } else {
                regfile_ops += 1;
            }
            if last.is_none_or(|(t, _, _)| earliest >= t) {
                last = Some((earliest, bypassed, r.rb));
                last_need_tc = src.need_tc;
            }
        }
        self.stats.bypassed_operands += bypassed_ops;
        self.stats.regfile_operands += regfile_ops;
        for (slot, n) in level_counts.iter().enumerate() {
            self.stats.bypass_levels[slot] += n;
        }
        self.stats.bypass_cases.insts_with_sources += 1;
        if any_bypassed {
            self.stats.bypass_cases.insts_with_bypass += 1;
        }
        if let Some((_, bypassed, prod_rb)) = last {
            if bypassed {
                self.stats
                    .bypass_cases
                    .record(BypassCase::classify(prod_rb, last_need_tc));
            }
        }
    }

    // ---- retire --------------------------------------------------------------

    fn retire<O: SimObserver>(&mut self, obs: &mut O) {
        let mut n = 0usize;
        while n < self.cfg.front_width {
            let Some(head) = self.ring.front() else { break };
            if head.state != State::Issued {
                break;
            }
            let seq = head.d.seq;
            let op = head.d.inst.op;
            let ea = head.d.ea;
            let complete_at = head.complete_at;
            if op.is_store() {
                self.resolve_store_data(seq);
                let Some(t) = self.sq.completion(seq) else { break };
                if t + 1 > self.cycle {
                    break;
                }
                debug_assert!(ea.is_some(), "store has an address");
                self.mem.commit_store(ea.unwrap_or_default(), self.cycle);
                self.sq.retire(seq);
            } else if complete_at > self.cycle {
                break;
            }
            let Some(head) = self.ring.pop_front() else { break };
            self.base_seq += 1;
            self.stats.retired += 1;
            self.stats.table1.record(head.d.inst.op);
            let (rb, tc_ready) = match &head.timing {
                Some(t) => (t.rb, t.tc_ready),
                None => (false, head.exec_end),
            };
            obs.on_retire(&RetireEvent {
                cycle: self.cycle,
                seq: head.d.seq,
                pc: head.d.pc,
                inst: &head.d.inst,
                fetch: head.fetch_cycle,
                dispatch: head.dispatch_cycle,
                issue: head.issue_cycle,
                exec_start: head.exec_start,
                exec_end: head.exec_end,
                tc_ready,
                rb,
            });
            n += 1;
        }
        obs.on_stage(Stage::Retire, n);
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Simulator {{ cycle: {}, retired: {}, in-flight: {} }}",
            self.cycle,
            self.stats.retired,
            self.ring.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoreModel, DatapathMode};
    use redbin_isa::{Inst, Operand, Reg};

    /// A loop whose body is `body` instructions produced by `f(i)`,
    /// iterated `iters` times (so the icache stays warm, as in real code).
    fn looped(body: usize, iters: i64, f: impl Fn(usize) -> Inst) -> Program {
        let mut code = vec![Inst::op(Opcode::Addq, Reg::R31, Operand::Imm(iters), Reg(20))];
        for i in 0..body {
            code.push(f(i));
        }
        code.push(Inst::op(Opcode::Subq, Reg(20), Operand::Imm(1), Reg(20)));
        code.push(Inst::branch(Opcode::Bne, Reg(20), -(body as i64 + 2)));
        code.push(Inst::halt());
        Program::new(code)
    }

    fn chain_program(n: usize) -> Program {
        // A serial dependence chain of adds: IPC is dominated by the add
        // latency.
        looped(32, n as i64 / 32, |_| {
            Inst::op(Opcode::Addq, Reg(1), Operand::Imm(1), Reg(1))
        })
    }

    fn parallel_program(n: usize) -> Program {
        // Truly independent adds (source r31, rotating destinations):
        // IPC is purely width-bound.
        looped(32, n as i64 / 32, |i| {
            Inst::op(Opcode::Addq, Reg::R31, Operand::Imm(i as i64), Reg(1 + (i % 16) as u8))
        })
    }

    fn run(cfg: MachineConfig, p: &Program) -> SimStats {
        Simulator::new(cfg, p).run().expect("sim completes")
    }

    #[test]
    fn serial_chain_exposes_add_latency() {
        // 4-wide (single cluster) so the chain is not perturbed by the
        // inter-cluster penalty.
        let p = chain_program(32_000);
        let ideal = run(MachineConfig::ideal(4), &p);
        let base = run(MachineConfig::baseline(4), &p);
        let rb = run(MachineConfig::rb_full(4), &p);
        // 1-cycle adds sustain ~1 IPC on a serial chain; 2-cycle adds ~0.5.
        assert!(ideal.ipc() > 0.85, "ideal ipc {}", ideal.ipc());
        assert!(base.ipc() < 0.6, "baseline ipc {}", base.ipc());
        assert!(
            rb.ipc() > 0.85,
            "redundant forwarding should match ideal on adds, got {}",
            rb.ipc()
        );
    }

    #[test]
    fn clustered_chain_pays_the_forwarding_delay() {
        // On the 8-wide machine the chain crosses the cluster boundary
        // every four instructions, so IPC lands below the 4-wide machine's.
        let p = chain_program(32_000);
        let w4 = run(MachineConfig::ideal(4), &p);
        let w8 = run(MachineConfig::ideal(8), &p);
        assert!(w8.ipc() < w4.ipc(), "w8 {} vs w4 {}", w8.ipc(), w4.ipc());
        assert!(w8.ipc() > 0.6, "w8 ipc {}", w8.ipc());
    }

    #[test]
    fn parallel_code_is_width_bound() {
        let p = parallel_program(64_000);
        let w8 = run(MachineConfig::ideal(8), &p);
        let w4 = run(MachineConfig::ideal(4), &p);
        assert!(w8.ipc() > 5.5, "8-wide ipc {}", w8.ipc());
        assert!(w4.ipc() > 3.3 && w4.ipc() <= 4.2, "4-wide ipc {}", w4.ipc());
        assert!(w8.ipc() > w4.ipc());
    }

    #[test]
    fn baseline_and_ideal_tie_on_parallel_code() {
        // With ample ILP, pipelined 2-cycle adders sustain the same
        // throughput (the paper's "throughput-intensive" observation).
        let p = parallel_program(64_000);
        let base = run(MachineConfig::baseline(8), &p);
        let ideal = run(MachineConfig::ideal(8), &p);
        let ratio = base.ipc() / ideal.ipc();
        assert!(ratio > 0.95, "ratio {ratio}");
    }

    #[test]
    fn rb_machine_charges_conversions_to_tc_consumers() {
        // add → xor chain: the logical op needs the converted value.
        let p = looped(32, 1000, |i| {
            if i % 2 == 0 {
                Inst::op(Opcode::Addq, Reg(1), Operand::Imm(1), Reg(1))
            } else {
                Inst::op(Opcode::Xor, Reg(1), Operand::Imm(3), Reg(1))
            }
        });
        let ideal = run(MachineConfig::ideal(4), &p);
        let rb = run(MachineConfig::rb_full(4), &p);
        // Ideal: 2 cycles per pair. RB: add sees xor's TC result fast, but
        // xor waits 3 cycles for the add's conversion → ~4 cycles per pair.
        assert!(
            rb.ipc() < 0.75 * ideal.ipc(),
            "rb {} vs ideal {}",
            rb.ipc(),
            ideal.ipc()
        );
    }

    #[test]
    fn limited_bypass_never_beats_full() {
        use redbin_workload::{Benchmark, Scale};
        for b in [Benchmark::Gap, Benchmark::Compress95, Benchmark::Parser] {
            let p = b.program(Scale::Test);
            let full = run(MachineConfig::rb_full(4), &p);
            let limited = run(MachineConfig::rb_limited(4), &p);
            assert!(
                limited.ipc() <= full.ipc() * 1.001,
                "{b:?}: limited {} should not beat full {}",
                limited.ipc(),
                full.ipc()
            );
        }
    }

    #[test]
    fn faithful_datapath_agrees_on_a_real_kernel() {
        use redbin_workload::{Benchmark, Scale};
        let p = Benchmark::Gap.program(Scale::Test);
        let cfg = MachineConfig::rb_full(8).with_datapath(DatapathMode::Faithful);
        let stats = run(cfg, &p);
        assert!(stats.fidelity_checks > 1000, "checks: {}", stats.fidelity_checks);
    }

    #[test]
    fn mispredicts_are_counted() {
        use redbin_workload::{Benchmark, Scale};
        let p = Benchmark::Twolf.program(Scale::Test);
        let stats = run(MachineConfig::ideal(8), &p);
        assert!(stats.mispredicts > 10, "twolf must mispredict");
        assert!(stats.branches > 100);
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let p = chain_program(102_400);
        let mut cfg = MachineConfig::ideal(8);
        cfg.max_cycles = 100;
        let err = Simulator::new(cfg, &p).run().unwrap_err();
        assert_eq!(err, SimError::CycleLimit(100));
    }

    #[test]
    fn retired_count_matches_oracle() {
        let p = parallel_program(768);
        let stats = run(MachineConfig::ideal(4), &p);
        // 1 init + 24 iterations × 34 body/loop instructions.
        assert_eq!(stats.retired, 1 + 24 * 34);
        assert_eq!(stats.table1.total(), stats.retired);
    }

    #[test]
    fn all_four_models_run_every_test_kernel() {
        use redbin_workload::{Benchmark, Scale};
        for b in [Benchmark::Compress95, Benchmark::Mcf, Benchmark::Eon] {
            let p = b.program(Scale::Test);
            let mut ipcs = Vec::new();
            for model in CoreModel::all() {
                let stats = run(MachineConfig::new(*model, 8), &p);
                assert!(stats.ipc() > 0.05, "{b:?} {model}: ipc {}", stats.ipc());
                ipcs.push(stats.ipc());
            }
            // Ideal ≥ Baseline on every kernel.
            assert!(
                ipcs[3] >= ipcs[0] * 0.98,
                "{b:?}: ideal {} vs baseline {}",
                ipcs[3],
                ipcs[0]
            );
        }
    }
}
