//! The stall-cause taxonomy must account for every issue slot: over a whole
//! run, `used + charged == cycles × width` exactly, for every benchmark and
//! every machine model. See `SimStats::stall_accounting_is_complete`.

use redbin_sim::config::{CoreModel, MachineConfig};
use redbin_sim::stats::{SimStats, StallCause};
use redbin_sim::Simulator;
use redbin_workload::{Benchmark, Scale};

fn run(model: CoreModel, width: usize, b: Benchmark) -> SimStats {
    let program = b.program(Scale::Test);
    Simulator::new(MachineConfig::new(model, width), &program)
        .run()
        .expect("benchmark runs")
}

#[test]
fn every_slot_is_charged_on_every_benchmark_and_model() {
    for b in Benchmark::all() {
        for &model in CoreModel::all() {
            let stats = run(model, 8, b);
            assert!(
                stats.stall_accounting_is_complete(),
                "{b:?}/{model}: used {} + charged {} != cycles {} x width {}",
                stats.stall.used,
                stats.stall.charged(),
                stats.cycles,
                stats.width,
            );
            assert_eq!(stats.stall.used, stats.retired, "{b:?}/{model}: every retired instruction issued exactly once");
        }
    }
}

#[test]
fn narrow_machine_accounts_too() {
    for b in [Benchmark::Gap, Benchmark::Mcf, Benchmark::Vortex95] {
        let stats = run(CoreModel::RbFull, 4, b);
        assert!(stats.stall_accounting_is_complete());
        assert_eq!(stats.width, 4);
    }
}

#[test]
fn ideal_machine_never_charges_bypass_holes_or_conversions() {
    // The Ideal model has 1-cycle adds, a full bypass network, and no
    // conversion stage: those two causes must be structurally impossible.
    for b in Benchmark::all() {
        let stats = run(CoreModel::Ideal, 8, b);
        assert_eq!(
            stats.stall.count(StallCause::BypassHole),
            0,
            "{b:?}: ideal machine charged bypass holes"
        );
        assert_eq!(
            stats.stall.count(StallCause::ConversionWait),
            0,
            "{b:?}: ideal machine charged conversion waits"
        );
    }
}

#[test]
fn dependent_code_charges_operand_wait_and_parallel_code_runs_clean() {
    use redbin_isa::{Inst, Opcode, Operand, Program, Reg};
    // A long serial add chain: most unused slots are operand waits.
    let mut code = vec![Inst::op(Opcode::Addq, Reg::R31, Operand::Imm(4000), Reg(20))];
    for _ in 0..32 {
        code.push(Inst::op(Opcode::Addq, Reg(1), Operand::Imm(1), Reg(1)));
    }
    code.push(Inst::op(Opcode::Subq, Reg(20), Operand::Imm(1), Reg(20)));
    code.push(Inst::branch(Opcode::Bne, Reg(20), -34));
    code.push(Inst::halt());
    let p = Program::new(code);
    let stats = Simulator::new(MachineConfig::baseline(8), &p)
        .run()
        .expect("runs");
    assert!(stats.stall_accounting_is_complete());
    let waits = stats.stall.count(StallCause::OperandWait);
    assert!(
        waits > stats.stall.charged() / 2,
        "serial chain: operand-wait {waits} should dominate {} charged slots",
        stats.stall.charged()
    );
}

#[test]
fn rb_limited_charges_holes_that_rb_full_does_not() {
    // The paper's §4.2 machine removes BYP-2 and the RB-side BYP-3: a
    // dependence chain of adds at distance 2 lands in the hole.
    let mut total_full = 0u64;
    let mut total_limited = 0u64;
    for b in Benchmark::all() {
        total_full += run(CoreModel::RbFull, 8, b).stall.count(StallCause::BypassHole);
        total_limited += run(CoreModel::RbLimited, 8, b)
            .stall
            .count(StallCause::BypassHole);
    }
    assert!(
        total_limited > total_full,
        "limited bypass should expose holes: limited {total_limited} vs full {total_full}"
    );
}
