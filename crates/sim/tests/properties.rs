//! Property-based tests for the simulator's substrates: caches, banks,
//! the store queue, and the bypass-availability model.

use proptest::prelude::*;
use redbin_sim::bypass::{BypassModel, ResultTiming};
use redbin_sim::cache::{Banks, Cache, Lookup, MemoryHierarchy};
use redbin_sim::config::{BypassLevels, CoreModel, MachineConfig};
use redbin_sim::lsq::{LoadDecision, StoreQueue};

fn any_machine() -> impl Strategy<Value = MachineConfig> {
    (
        prop::sample::select(vec![
            CoreModel::Baseline,
            CoreModel::RbLimited,
            CoreModel::RbFull,
            CoreModel::Ideal,
        ]),
        prop::sample::select(vec![4usize, 8]),
        prop::bool::ANY,
        prop::bool::ANY,
        prop::bool::ANY,
    )
        .prop_map(|(model, width, l1, l2, l3)| {
            MachineConfig::new(model, width).with_bypass(BypassLevels {
                l1: l1 || (!l2 && !l3), // keep at least one level
                l2,
                l3,
            })
        })
}

fn timing_for(model: CoreModel, ready: u64, rb: bool) -> ResultTiming {
    let rb = rb && model.is_rb();
    ResultTiming {
        ready,
        rb,
        tc_ready: if rb { ready + 2 } else { ready },
        cluster: 0,
    }
}

proptest! {
    #[test]
    fn availability_is_continuous_from_rf_start(
        cfg in any_machine(),
        ready in 5u64..1000,
        rb in prop::bool::ANY,
        need_tc in prop::bool::ANY,
        probe in 0u64..40,
    ) {
        let m = BypassModel::new(&cfg);
        let r = timing_for(cfg.model, ready, rb);
        let rf = m.rf_start(&r, need_tc, 0);
        prop_assert!(m.available(&r, need_tc, 0, rf + probe),
            "must be available at rf_start {rf} + {probe}");
        // Nothing is available at or before production.
        prop_assert!(!m.available(&r, need_tc, 0, ready));
    }

    #[test]
    fn earliest_is_the_first_available_cycle(
        cfg in any_machine(),
        ready in 5u64..1000,
        rb in prop::bool::ANY,
        need_tc in prop::bool::ANY,
        from in 0u64..1020,
    ) {
        let m = BypassModel::new(&cfg);
        let r = timing_for(cfg.model, ready, rb);
        let e = m.earliest(&r, need_tc, 0, from);
        prop_assert!(e >= from);
        prop_assert!(m.available(&r, need_tc, 0, e));
        for c in from..e {
            prop_assert!(!m.available(&r, need_tc, 0, c),
                "cycle {c} available but earliest said {e}");
        }
    }

    #[test]
    fn cross_cluster_never_arrives_earlier(
        ready in 5u64..1000,
        rb in prop::bool::ANY,
        need_tc in prop::bool::ANY,
        from in 0u64..1020,
    ) {
        let cfg = MachineConfig::rb_full(8);
        let m = BypassModel::new(&cfg);
        let r = timing_for(cfg.model, ready, rb);
        let local = m.earliest(&r, need_tc, 0, from);
        let remote = m.earliest(&r, need_tc, 1, from);
        prop_assert!(remote >= local);
        prop_assert!(remote <= local + cfg.cluster_delay + 4,
            "remote {remote} unreasonably far past local {local}");
    }

    #[test]
    fn fewer_bypass_levels_never_help(
        ready in 5u64..1000,
        need_tc in prop::bool::ANY,
        from in 0u64..1020,
    ) {
        let full = BypassModel::new(&MachineConfig::ideal(4));
        let cut = BypassModel::new(
            &MachineConfig::ideal(4).with_bypass(BypassLevels::without(&[2])),
        );
        let r = timing_for(CoreModel::Ideal, ready, false);
        prop_assert!(cut.earliest(&r, need_tc, 0, from) >= full.earliest(&r, need_tc, 0, from));
    }

    #[test]
    fn cache_hits_after_fill_and_respects_capacity(
        addrs in prop::collection::vec(0u64..(1 << 20), 1..200),
    ) {
        let mut c = Cache::new(8 * 1024, 2, 64);
        for &a in &addrs {
            match c.access(a) {
                Lookup::Miss => c.set_fill(a, 0),
                Lookup::Hit { .. } => {}
            }
            // Immediately re-accessing the same line must hit (MRU).
            let hit = matches!(c.access(a), Lookup::Hit { .. });
            prop_assert!(hit, "MRU line must hit");
        }
        prop_assert!(c.misses() <= c.accesses());
    }

    #[test]
    fn banks_start_times_are_feasible(
        reqs in prop::collection::vec((0u64..(1 << 16), 0u64..500), 1..100),
    ) {
        let mut b = Banks::new(4, 3, 6);
        // Issue in nondecreasing time order, as the pipeline does.
        let mut reqs = reqs;
        reqs.sort_by_key(|r| r.1);
        for (addr, cycle) in reqs {
            let start = b.schedule(addr, cycle);
            prop_assert!(start >= cycle, "bank served before the request");
        }
    }

    #[test]
    fn store_queue_forwarding_is_sound(
        store_addr in 0u64..256,
        load_off in 0u64..16,
        data_time in 1u64..100,
        exec in 1u64..200,
    ) {
        let mut q = StoreQueue::new();
        q.dispatch(1);
        q.set_address(1, store_addr, 8, 1);
        q.set_data_time(1, data_time);
        let load_addr = store_addr + load_off;
        match q.check_load(5, load_addr, 8, exec) {
            LoadDecision::Forward(t) => {
                // Only fully covered loads forward, and never before the
                // data exists or the load executes.
                prop_assert!(load_off == 0, "partial overlap must not forward");
                prop_assert!(t > exec.max(data_time) - 1);
            }
            LoadDecision::Blocked => {
                prop_assert!(load_off > 0 && load_off < 8,
                    "blocked requires a partial overlap here");
            }
            LoadDecision::Cache => {
                prop_assert!(load_off >= 8, "disjoint loads go to the cache");
            }
        }
    }

    #[test]
    fn hierarchy_latencies_are_ordered(addr in 0u64..(1 << 24)) {
        let mut h = MemoryHierarchy::new(
            (64 * 1024, 4, 64, 2),
            (8 * 1024, 2, 64, 2),
            (1024 * 1024, 8, 64, 8, 2, 2),
            (100, 32, 4),
        );
        let (cold, _) = h.access_data(addr, 0);
        let (warm, _) = h.access_data(addr, cold + 10);
        prop_assert!(cold >= 102, "cold access goes to memory: {cold}");
        prop_assert_eq!(warm, cold + 10 + 2, "warm access is an L1 hit");
    }
}
