//! Property-based tests for the simulator's substrates: caches, banks,
//! the store queue, and the bypass-availability model.
//!
//! Inputs come from `redbin-testkit`'s deterministic generator (the
//! workspace builds offline, so there is no proptest); a failing case
//! prints its seed for standalone reproduction.

use redbin_sim::bypass::{BypassModel, ResultTiming};
use redbin_sim::cache::{Banks, Cache, Lookup, MemoryHierarchy};
use redbin_sim::config::{BypassLevels, CoreModel, MachineConfig};
use redbin_sim::lsq::{LoadDecision, StoreQueue};
use redbin_testkit::{cases, Rng};

const CASES: usize = 1024;

fn any_machine(r: &mut Rng) -> MachineConfig {
    let model = *r.pick(&[
        CoreModel::Baseline,
        CoreModel::RbLimited,
        CoreModel::RbFull,
        CoreModel::Ideal,
    ]);
    let width = *r.pick(&[4usize, 8]);
    let (l1, l2, l3) = (r.next_bool(), r.next_bool(), r.next_bool());
    MachineConfig::new(model, width).with_bypass(BypassLevels {
        l1: l1 || (!l2 && !l3), // keep at least one level
        l2,
        l3,
    })
}

fn timing_for(model: CoreModel, ready: u64, rb: bool) -> ResultTiming {
    let rb = rb && model.is_rb();
    ResultTiming {
        ready,
        rb,
        tc_ready: if rb { ready + 2 } else { ready },
        cluster: 0,
    }
}

#[test]
fn availability_is_continuous_from_rf_start() {
    cases(CASES, 0x51, |r| {
        let cfg = any_machine(r);
        let ready = r.range_u64(5, 1000);
        let rb = r.next_bool();
        let need_tc = r.next_bool();
        let probe = r.range_u64(0, 40);
        let m = BypassModel::new(&cfg);
        let t = timing_for(cfg.model, ready, rb);
        let rf = m.rf_start(&t, need_tc, 0);
        assert!(
            m.available(&t, need_tc, 0, rf + probe),
            "must be available at rf_start {rf} + {probe}"
        );
        // Nothing is available at or before production.
        assert!(!m.available(&t, need_tc, 0, ready));
    });
}

#[test]
fn earliest_is_the_first_available_cycle() {
    cases(CASES, 0x52, |r| {
        let cfg = any_machine(r);
        let ready = r.range_u64(5, 1000);
        let rb = r.next_bool();
        let need_tc = r.next_bool();
        let from = r.range_u64(0, 1020);
        let m = BypassModel::new(&cfg);
        let t = timing_for(cfg.model, ready, rb);
        let e = m.earliest(&t, need_tc, 0, from);
        assert!(e >= from);
        assert!(m.available(&t, need_tc, 0, e));
        for c in from..e {
            assert!(
                !m.available(&t, need_tc, 0, c),
                "cycle {c} available but earliest said {e}"
            );
        }
    });
}

#[test]
fn unavailable_reason_classifies_every_pre_available_cycle() {
    use redbin_sim::bypass::UnavailableReason;
    cases(CASES, 0x53, |r| {
        let cfg = any_machine(r);
        let ready = r.range_u64(5, 1000);
        let rb = r.next_bool();
        let need_tc = r.next_bool();
        let m = BypassModel::new(&cfg);
        let t = timing_for(cfg.model, ready, rb);
        let rf = m.rf_start(&t, need_tc, 0);
        for e in ready.saturating_sub(2)..rf + 3 {
            let reason = m.unavailable_reason(&t, need_tc, 0, e);
            assert_eq!(
                reason.is_none(),
                m.available(&t, need_tc, 0, e),
                "reason/available must agree at cycle {e}"
            );
            // The result cannot be "in flight" after it exists.
            if reason == Some(UnavailableReason::InFlight) {
                assert!(e <= t.ready, "in-flight after production at {e}");
            }
            // Conversion waits only happen for redundant producers feeding
            // 2's-complement consumers.
            if reason == Some(UnavailableReason::ConversionWait) {
                assert!(t.rb && need_tc);
                assert!(e <= t.tc_ready);
            }
        }
    });
}

#[test]
fn cross_cluster_never_arrives_earlier() {
    cases(CASES, 0x54, |r| {
        let ready = r.range_u64(5, 1000);
        let rb = r.next_bool();
        let need_tc = r.next_bool();
        let from = r.range_u64(0, 1020);
        let cfg = MachineConfig::rb_full(8);
        let m = BypassModel::new(&cfg);
        let t = timing_for(cfg.model, ready, rb);
        let local = m.earliest(&t, need_tc, 0, from);
        let remote = m.earliest(&t, need_tc, 1, from);
        assert!(remote >= local);
        assert!(
            remote <= local + cfg.cluster_delay + 4,
            "remote {remote} unreasonably far past local {local}"
        );
    });
}

#[test]
fn fewer_bypass_levels_never_help() {
    cases(CASES, 0x55, |r| {
        let ready = r.range_u64(5, 1000);
        let need_tc = r.next_bool();
        let from = r.range_u64(0, 1020);
        let full = BypassModel::new(&MachineConfig::ideal(4));
        let cut =
            BypassModel::new(&MachineConfig::ideal(4).with_bypass(BypassLevels::without(&[2])));
        let t = timing_for(CoreModel::Ideal, ready, false);
        assert!(cut.earliest(&t, need_tc, 0, from) >= full.earliest(&t, need_tc, 0, from));
    });
}

#[test]
fn cache_hits_after_fill_and_respects_capacity() {
    cases(256, 0x56, |r| {
        let n = r.range_usize(1, 200);
        let addrs = r.vec(n, |r| r.range_u64(0, 1 << 20));
        let mut c = Cache::new(8 * 1024, 2, 64);
        for &a in &addrs {
            match c.access(a) {
                Lookup::Miss => c.set_fill(a, 0),
                Lookup::Hit { .. } => {}
            }
            // Immediately re-accessing the same line must hit (MRU).
            let hit = matches!(c.access(a), Lookup::Hit { .. });
            assert!(hit, "MRU line must hit");
        }
        assert!(c.misses() <= c.accesses());
    });
}

#[test]
fn banks_start_times_are_feasible() {
    cases(256, 0x57, |r| {
        let n = r.range_usize(1, 100);
        let mut reqs = r.vec(n, |r| (r.range_u64(0, 1 << 16), r.range_u64(0, 500)));
        let mut b = Banks::new(4, 3, 6);
        // Issue in nondecreasing time order, as the pipeline does.
        reqs.sort_by_key(|r| r.1);
        for (addr, cycle) in reqs {
            let start = b.schedule(addr, cycle);
            assert!(start >= cycle, "bank served before the request");
        }
    });
}

#[test]
fn store_queue_forwarding_is_sound() {
    cases(CASES, 0x58, |r| {
        let store_addr = r.range_u64(0, 256);
        let load_off = r.range_u64(0, 16);
        let data_time = r.range_u64(1, 100);
        let exec = r.range_u64(1, 200);
        let mut q = StoreQueue::new();
        q.dispatch(1);
        q.set_address(1, store_addr, 8, 1);
        q.set_data_time(1, data_time);
        let load_addr = store_addr + load_off;
        match q.check_load(5, load_addr, 8, exec) {
            LoadDecision::Forward(t) => {
                // Only fully covered loads forward, and never before the
                // data exists or the load executes.
                assert!(load_off == 0, "partial overlap must not forward");
                assert!(t > exec.max(data_time) - 1);
            }
            LoadDecision::Blocked => {
                assert!(
                    load_off > 0 && load_off < 8,
                    "blocked requires a partial overlap here"
                );
            }
            LoadDecision::Cache => {
                assert!(load_off >= 8, "disjoint loads go to the cache");
            }
        }
    });
}

#[test]
fn hierarchy_latencies_are_ordered() {
    cases(CASES, 0x59, |r| {
        let addr = r.range_u64(0, 1 << 24);
        let mut h = MemoryHierarchy::new(
            (64 * 1024, 4, 64, 2),
            (8 * 1024, 2, 64, 2),
            (1024 * 1024, 8, 64, 8, 2, 2),
            (100, 32, 4),
        );
        let (cold, _) = h.access_data(addr, 0);
        let (warm, _) = h.access_data(addr, cold + 10);
        assert!(cold >= 102, "cold access goes to memory: {cold}");
        assert_eq!(warm, cold + 10 + 2, "warm access is an L1 hit");
    });
}
