//! Reproduces the paper's pipeline-diagram examples (Figures 4, 5 and 7):
//! the dependency graph SLL → {AND, ADD}, ADD → SUB, SLL → SUB, timed on
//! the RB machine with a full bypass network (Figure 5) and with the §4.2
//! limited network (Figure 7).

use redbin_isa::{Inst, Opcode, Operand, Program, Reg};
use redbin_sim::trace::PipelineTrace;
use redbin_sim::{MachineConfig, Simulator};

/// The paper's Figure 4 dependency graph, preceded by a register setup.
///
/// Returns (program, seqs of [SLL, AND, ADD, SUB]).
fn figure4_program() -> (Program, [u64; 4]) {
    let code = vec![
        // setup (seq 0): r1 = 7
        Inst::op(Opcode::Addq, Reg::R31, Operand::Imm(7), Reg(1)),
        // SLL (seq 1): r2 = r1 << 2      (RB-output ALU)
        Inst::op(Opcode::Sll, Reg(1), Operand::Imm(2), Reg(2)),
        // AND (seq 2): r3 = r2 & 0xff    (TC-input ALU)
        Inst::op(Opcode::And, Reg(2), Operand::Imm(0xff), Reg(3)),
        // ADD (seq 3): r4 = r2 + 1       (RB-output ALU, forwards from SLL)
        Inst::op(Opcode::Addq, Reg(2), Operand::Imm(1), Reg(4)),
        // SUB (seq 4): r5 = r4 − r2      (needs ADD and SLL results)
        Inst::op(Opcode::Subq, Reg(4), Operand::Reg(Reg(2)), Reg(5)),
        Inst::halt(),
    ];
    (Program::new(code), [1, 2, 3, 4])
}

fn run_traced(cfg: MachineConfig) -> PipelineTrace {
    let (program, _) = figure4_program();
    let sim = Simulator::new(cfg, &program);
    let (_stats, trace) = sim.run_traced().expect("runs");
    trace
}

#[test]
fn figure5_full_bypass_timing() {
    // RB-full: the ADD executes the cycle after SLL's EXE via BYP-1 (in
    // redundant format); the SUB chains off the ADD the next cycle; the
    // AND (2's-complement consumer) waits for the CV1/CV2 conversion.
    let t = run_traced(MachineConfig::rb_full(4));
    let sll = t.entry(1).expect("sll").clone();
    let and = t.entry(2).expect("and").clone();
    let add = t.entry(3).expect("add").clone();
    let sub = t.entry(4).expect("sub").clone();

    assert!(sll.rb, "SLL produces a redundant result on the RB machine");
    assert_eq!(sll.tc_ready, sll.exec_end + 2, "two conversion stages");
    assert_eq!(
        add.exec_start,
        sll.exec_end + 1,
        "ADD consumes SLL's intermediate redundant result back-to-back\n{}",
        t.render(&[1, 2, 3, 4])
    );
    assert_eq!(
        sub.exec_start,
        add.exec_end + 1,
        "SUB chains off ADD in redundant format"
    );
    assert_eq!(
        and.exec_start,
        sll.tc_ready + 1,
        "AND must wait for the converted (BYP-3) value"
    );
}

#[test]
fn figure7_limited_bypass_delays_the_sub() {
    // RB-limited: BYP-2 is gone and BYP-3 is not wired to the RB-input
    // ALUs, so SLL's value has a 2-cycle hole; the SUB (whose other
    // operand arrives one cycle after SLL's BYP-1 slot) must wait for the
    // register file.
    let full = run_traced(MachineConfig::rb_full(4));
    let limited = run_traced(MachineConfig::rb_limited(4));
    let sub_full = full.entry(4).expect("sub").clone();
    let sub_lim = limited.entry(4).expect("sub").clone();
    let sll_lim = limited.entry(1).expect("sll").clone();
    let and_lim = limited.entry(2).expect("and").clone();

    assert!(
        sub_lim.exec_start > sub_full.exec_start,
        "the SUB is delayed on the limited machine (full: {}, limited: {})\n{}",
        sub_full.exec_start,
        sub_lim.exec_start,
        limited.render(&[1, 2, 3, 4])
    );
    // It retrieves both operands from the register file, as in Figure 7:
    // SLL's value is readable from exec_end+4, but the ADD (which executed
    // at exec_end+1) has its own 2-cycle hole, so its register-file slot at
    // exec_end+5 is what finally releases the SUB.
    assert_eq!(
        sub_lim.exec_start,
        sll_lim.exec_end + 5,
        "the SUB retrieves its operands from the register file"
    );
    // The AND is unaffected: BYP-3 still feeds TC-input ALUs.
    assert_eq!(and_lim.exec_start, sll_lim.tc_ready + 1);
}

#[test]
fn baseline_has_no_conversion_stages() {
    let t = run_traced(MachineConfig::baseline(4));
    let sll = t.entry(1).expect("sll").clone();
    let add = t.entry(3).expect("add").clone();
    assert!(!sll.rb);
    assert_eq!(sll.tc_ready, sll.exec_end);
    // 2-cycle adds: the dependent ADD executes after the SLL completes.
    assert!(add.exec_start > sll.exec_end);
    assert_eq!(add.exec_end - add.exec_start, 1, "2-cycle pipelined add");
}

#[test]
fn rendered_diagram_shows_the_conversion_pipeline() {
    let t = run_traced(MachineConfig::rb_full(4));
    let s = t.render(&[1, 2, 3, 4]);
    assert!(s.contains("EXE"), "{s}");
    assert!(s.contains("CV1"), "{s}");
    assert!(s.contains("CV2"), "{s}");
    assert!(s.contains("WB"), "{s}");
    assert!(s.contains("sll"), "{s}");
}

#[test]
fn trace_is_complete_and_ordered() {
    let (program, _) = figure4_program();
    let sim = Simulator::new(MachineConfig::ideal(4), &program);
    let (stats, trace) = sim.run_traced().expect("runs");
    assert_eq!(trace.entries().len() as u64, stats.retired);
    for w in trace.entries().windows(2) {
        assert!(w[0].retire <= w[1].retire, "retirement is in order");
    }
    for e in trace.entries() {
        assert!(e.fetch <= e.dispatch);
        assert!(e.dispatch <= e.issue);
        assert!(e.issue < e.exec_start);
        assert!(e.exec_start <= e.exec_end);
        assert!(e.exec_end <= e.tc_ready);
        assert!(e.tc_ready < e.retire);
    }
}

#[test]
fn dependence_aware_steering_keeps_chains_together() {
    use redbin_sim::SteeringPolicy;
    use redbin_workload::{Benchmark, Scale};
    // On the clustered 8-wide RB-limited machine, steering consumers next
    // to producers should never hurt in aggregate, and usually helps on
    // chain-heavy kernels.
    let mut better = 0;
    let mut total = 0;
    for b in [Benchmark::Gap, Benchmark::Compress95, Benchmark::Vpr, Benchmark::Li] {
        let program = b.program(Scale::Test);
        let rr = Simulator::new(MachineConfig::rb_limited(8), &program)
            .run()
            .expect("runs")
            .ipc();
        let dep = Simulator::new(
            MachineConfig::rb_limited(8).with_steering(SteeringPolicy::DependenceAware),
            &program,
        )
        .run()
        .expect("runs")
        .ipc();
        total += 1;
        if dep >= rr * 0.999 {
            better += 1;
        }
    }
    assert!(
        better * 2 >= total,
        "dependence-aware steering should help or tie on most chain-heavy kernels ({better}/{total})"
    );
}
