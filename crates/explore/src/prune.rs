//! Static pruning: rejecting unsound grid points before any simulation.
//!
//! Every enumerated machine goes through the same dataflow reachability
//! proof the server runs at submit time
//! ([`redbin_analyze::bypass::validate_machine`]). A point whose bypass
//! ablation strands an operand class (the §4.2 pathology — typically an
//! `rb->tc` edge with no surviving forwarding level and no register-file
//! fallback) is rejected with the exact list of unreachable classes, and
//! the explorer tallies a count per rejection reason so a grid report
//! shows *why* a region of the space is empty, not just that it is.

use std::collections::BTreeMap;

use redbin::json::Json;
use redbin_analyze::bypass::validate_machine;

use crate::grid::GridPoint;

/// The outcome of statically checking one grid point.
#[derive(Debug, Clone, PartialEq)]
pub enum PruneVerdict {
    /// Every operand class can reach its consumers; simulate it.
    Sound,
    /// At least one operand class is stranded; the labels name them.
    Unsound(Vec<String>),
}

/// Checks a single point without simulating it.
pub fn check_point(point: &GridPoint) -> Result<PruneVerdict, String> {
    let machine = point.machine()?;
    match validate_machine(&machine) {
        Ok(_) => Ok(PruneVerdict::Sound),
        Err(unsound) => Ok(PruneVerdict::Unsound(unsound.unreachable)),
    }
}

/// Aggregated pruning statistics for a whole grid.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PruneReport {
    /// Points that passed the static check.
    pub sound: Vec<GridPoint>,
    /// Rejected points with their unreachable-class labels.
    pub pruned: Vec<(GridPoint, Vec<String>)>,
    /// How many rejections each unreachable-class label contributed to.
    /// A point stranding two classes counts once under each label.
    pub reasons: BTreeMap<String, usize>,
}

impl PruneReport {
    /// Total points examined.
    pub fn total(&self) -> usize {
        self.sound.len() + self.pruned.len()
    }

    /// The per-reason tallies as a JSON object (sorted by label).
    pub fn reasons_json(&self) -> Json {
        let mut o = Json::object();
        for (label, count) in &self.reasons {
            o.set(label, Json::UInt(*count as u64));
        }
        o
    }
}

/// Partitions a grid into sound and pruned points.
///
/// # Errors
///
/// Propagates the (structurally impossible on validated grids) machine
/// build failure from [`GridPoint::machine`].
pub fn prune(points: &[GridPoint]) -> Result<PruneReport, String> {
    let mut report = PruneReport::default();
    for &point in points {
        match check_point(&point)? {
            PruneVerdict::Sound => report.sound.push(point),
            PruneVerdict::Unsound(labels) => {
                for label in &labels {
                    *report.reasons.entry(label.clone()).or_insert(0) += 1;
                }
                report.pruned.push((point, labels));
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;
    use redbin::sim::{BypassLevels, CoreModel};

    #[test]
    fn default_grid_prunes_exactly_the_rb_rf_only_pathologies() {
        let spec = GridSpec::default();
        let report = prune(&spec.enumerate()).unwrap();
        assert_eq!(report.total(), 448);
        // Every rejection involves an RB producer whose fallback path was
        // amputated by `rb_rf_only`: cutting level 3 strands `rb->tc`
        // (both RB cores), and cutting level 1 additionally strands
        // `rb->any` on RB-limited, whose consumers cannot take redundant
        // operands from the later levels.
        assert_eq!(report.pruned.len(), 64);
        assert_eq!(report.sound.len(), 384);
        for (p, labels) in &report.pruned {
            assert!(matches!(p.model, CoreModel::RbLimited | CoreModel::RbFull));
            assert!(p.rb_rf_only);
            assert!(!p.bypass.has(3) || !p.bypass.has(1));
            assert!(!labels.is_empty());
        }
        assert_eq!(report.reasons.get("rb->tc local"), Some(&48));
        assert_eq!(report.reasons.get("rb->any local"), Some(&24));
        // Remote forwarding only exists on clustered (8-wide) machines.
        assert_eq!(report.reasons.get("rb->tc remote"), Some(&24));
        assert_eq!(report.reasons.get("rb->any remote"), Some(&12));
        assert_eq!(report.reasons.len(), 4, "no other rejection reasons");
    }

    #[test]
    fn sound_and_unsound_spot_checks_match_the_analyzer() {
        let mut spec = GridSpec::golden_small();
        spec.rb_rf_only = vec![true];
        spec.bypass = vec![BypassLevels::without(&[3])];
        for p in spec.enumerate() {
            let verdict = check_point(&p).unwrap();
            match p.model {
                CoreModel::RbLimited | CoreModel::RbFull => {
                    assert_eq!(
                        verdict,
                        PruneVerdict::Unsound(vec![
                            "rb->tc local".to_string(),
                            "rb->tc remote".to_string(),
                        ])
                    );
                }
                _ => assert_eq!(verdict, PruneVerdict::Sound),
            }
        }
    }
}
