//! Dataflow-limit annotation: the static IPC upper bound every grid
//! point is measured against.
//!
//! The bound comes from `redbin_analyze::program`: the critical-path
//! height of each benchmark's dynamic dependence graph under the
//! point's execution latencies, capped by fetch width. It deliberately
//! ignores bypass ablations, steering and `rb_rf_only` — it is the
//! dataflow limit the paper's machines chase — so annotating each point
//! with it turns the frontier into "what fraction of the limit does
//! this configuration buy, and at what adder delay".
//!
//! Tracing a benchmark is the expensive half (one emulated run of the
//! whole workload) and depends only on (benchmark, scale); querying a
//! (model, width) pair against the cached facts is O(1). A grid fixes
//! its suite and scale, so one [`SuiteBounds`] serves every point.

use redbin::sim::stats::harmonic_mean;
use redbin::sim::CoreModel;
use redbin::wire::PointSuite;
use redbin::workload::Scale;
use redbin_analyze::program::{TraceFacts, TRACE_STEP_BOUND};

/// Per-benchmark dependence facts for one (suite, scale), traced once
/// and queried for every (model, width) combination in the grid.
#[derive(Debug, Clone)]
pub struct SuiteBounds {
    facts: Vec<TraceFacts>,
}

impl SuiteBounds {
    /// Traces every benchmark of the suite at the given scale.
    pub fn trace(suite: PointSuite, scale: Scale) -> SuiteBounds {
        let facts = suite
            .benchmarks()
            .into_iter()
            .map(|b| TraceFacts::trace(&b.program(scale), TRACE_STEP_BOUND))
            .collect();
        SuiteBounds { facts }
    }

    /// The suite's dataflow-limit IPC for one machine shape: the
    /// harmonic mean of the per-benchmark bounds, mirroring how the
    /// simulated `hmean-ipc` aggregates the same suite.
    pub fn bound_ipc(&self, model: CoreModel, width: usize) -> f64 {
        let per_bench: Vec<f64> = self
            .facts
            .iter()
            .map(|f| f.bound_ipc(model, width))
            .collect();
        harmonic_mean(&per_bench)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_positive_and_width_monotone() {
        let b = SuiteBounds::trace(PointSuite::Quick, Scale::Test);
        for &model in CoreModel::all() {
            let w4 = b.bound_ipc(model, 4);
            let w8 = b.bound_ipc(model, 8);
            assert!(w4 > 0.0 && w8 > 0.0, "{model:?}");
            assert!(w8 >= w4, "wider fetch cannot lower the limit");
            assert!(w4 <= 4.0 + 1e-9, "{model:?}: width caps the bound");
        }
        // Baseline's 2-cycle adder lengthens dependence chains, so its
        // limit can only be at or below the fast-latency models'.
        assert!(b.bound_ipc(CoreModel::Baseline, 8) <= b.bound_ipc(CoreModel::Ideal, 8) + 1e-9);
    }
}
