//! Rendering an [`ExploreOutcome`] as a JSON document and as the ASCII
//! frontier table the CLI prints.
//!
//! The JSON document is deliberately wall-clock-free and fully ordered,
//! so the same grid always renders byte-identically — that is what lets
//! `tests/golden/explore_frontier_test.json` pin a whole exploration.

use std::fmt::Write as _;

use redbin::json::{self, Json};
use redbin::wire::steering_name;

use crate::{EvaluatedPoint, ExploreOutcome};

/// Simulated IPC as a percentage of the point's static dataflow limit.
fn pct_of_bound(ep: &EvaluatedPoint) -> f64 {
    if ep.bound_ipc > 0.0 {
        100.0 * ep.ipc / ep.bound_ipc
    } else {
        0.0
    }
}

fn point_json(ep: &EvaluatedPoint, on_frontier: bool) -> Json {
    let mut o = Json::object();
    o.set("label", Json::Str(ep.point.label()));
    o.set("job", Json::Str(ep.job_id.clone()));
    o.set("model", Json::Str(ep.point.model.name().to_string()));
    o.set("width", Json::UInt(ep.point.width as u64));
    o.set("bypass", Json::Str(ep.point.bypass.label()));
    o.set(
        "steering",
        Json::Str(steering_name(ep.point.steering).to_string()),
    );
    o.set("rb-rf-only", Json::Bool(ep.point.rb_rf_only));
    o.set("delay-model", Json::Str(ep.point.delay.name()));
    o.set("hmean-ipc", Json::Num(ep.ipc));
    o.set("bound-ipc", Json::Num(ep.bound_ipc));
    o.set("pct-of-bound", Json::Num(pct_of_bound(ep)));
    o.set("delay", Json::Num(ep.delay));
    o.set("frontier", Json::Bool(on_frontier));
    o
}

/// The full exploration report as a JSON document.
pub fn to_json(out: &ExploreOutcome) -> Json {
    let mut doc = Json::object();
    doc.set("grid", out.grid.to_json());
    doc.set("enumerated", Json::UInt(out.prune.total() as u64));
    let mut pruned = Json::object();
    pruned.set("count", Json::UInt(out.prune.pruned.len() as u64));
    pruned.set("reasons", out.prune.reasons_json());
    doc.set("pruned", pruned);
    doc.set("sound", Json::UInt(out.prune.sound.len() as u64));
    doc.set("unique-sims", Json::UInt(out.unique_sims as u64));
    doc.set("cache-hits", Json::UInt(out.cache_hits));
    doc.set(
        "points",
        Json::Arr(
            out.evaluated
                .iter()
                .enumerate()
                .map(|(i, ep)| point_json(ep, out.frontier.contains(&i)))
                .collect(),
        ),
    );
    doc.set(
        "frontier",
        Json::Arr(
            out.frontier
                .iter()
                .map(|&i| point_json(&out.evaluated[i], true))
                .collect(),
        ),
    );
    doc.set("metrics", json::metrics(&out.metrics));
    doc
}

/// The human-readable report: pruning summary plus the frontier table,
/// delay ascending (each successive row buys IPC with delay).
pub fn render_text(out: &ExploreOutcome) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Design-space exploration: IPC vs adder delay");
    let _ = writeln!(
        s,
        "enumerated {}  pruned {}  sound {}  unique sims {}  cache hits {}",
        out.prune.total(),
        out.prune.pruned.len(),
        out.prune.sound.len(),
        out.unique_sims,
        out.cache_hits,
    );
    if !out.prune.reasons.is_empty() {
        let _ = writeln!(s, "pruned by unreachable operand class:");
        for (label, count) in &out.prune.reasons {
            let _ = writeln!(s, "  {label:<16} {count}");
        }
    }
    let _ = writeln!(s, "Pareto frontier ({} points):", out.frontier.len());
    let _ = writeln!(
        s,
        "{:>10} {:>5} {:>8} {:>16} {:>10} {:>6} {:>9} {:>7} {:>7} {:>7}",
        "model", "width", "bypass", "steering", "rb-rf-only", "delay", "adder", "h-mean", "bound",
        "%limit"
    );
    for &i in &out.frontier {
        let ep = &out.evaluated[i];
        let _ = writeln!(
            s,
            "{:>10} {:>5} {:>8} {:>16} {:>10} {:>6} {:>9.2} {:>7.3} {:>7.3} {:>6.1}%",
            ep.point.model.name(),
            ep.point.width,
            ep.point.bypass.label(),
            steering_name(ep.point.steering),
            if ep.point.rb_rf_only { "yes" } else { "no" },
            ep.point.delay.name(),
            ep.delay,
            ep.ipc,
            ep.bound_ipc,
            pct_of_bound(ep),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::grid::GridSpec;

    #[test]
    fn report_is_deterministic_and_well_formed() {
        let grid = GridSpec::golden_small();
        let backend = Backend::Local {
            threads: 0,
            reference: false,
        };
        let a = crate::explore(&grid, &backend).unwrap();
        let b = crate::explore(&grid, &backend).unwrap();
        assert_eq!(to_json(&a).to_pretty(), to_json(&b).to_pretty());

        let doc = to_json(&a);
        // The pretty form reparses to the same document.
        let reparsed = json::parse(&doc.to_pretty()).expect("valid JSON");
        assert_eq!(reparsed.to_pretty(), doc.to_pretty());
        assert_eq!(doc.get("enumerated").and_then(Json::as_u64), Some(8));
        let frontier = doc.get("frontier").and_then(Json::as_array).unwrap();
        assert!(!frontier.is_empty());

        let text = render_text(&a);
        assert!(text.contains("Pareto frontier"));
        assert!(text.contains("h-mean"));
        assert!(text.contains("%limit"));
        let points = doc.get("points").and_then(Json::as_array).unwrap();
        for p in points {
            let ipc = p.get("hmean-ipc").and_then(Json::as_f64).unwrap();
            let bound = p.get("bound-ipc").and_then(Json::as_f64).unwrap();
            let pct = p.get("pct-of-bound").and_then(Json::as_f64).unwrap();
            assert!(ipc <= bound + 1e-9, "simulated IPC beats its limit");
            assert!((0.0..=100.0 + 1e-6).contains(&pct));
        }
    }
}
