//! # redbin-explore
//!
//! Design-space exploration over the machine configurations of the
//! HPCA 2002 redundant-binary pipeline reproduction.
//!
//! An exploration is a four-stage pipeline:
//!
//! 1. **Enumerate** — a declarative [`GridSpec`](grid::GridSpec) cross
//!    product over widths, core models, bypass ablations, steering
//!    policies, the `rb_rf_only` escape hatch, and gate-delay models.
//! 2. **Prune** — every point runs through the static dataflow
//!    reachability proof (`redbin_analyze::bypass`) *before* any
//!    simulation; unsound points are rejected with per-reason counts.
//! 3. **Simulate** — surviving points deduplicate onto content-addressed
//!    [`JobSpec`](redbin::wire::JobSpec)s (the delay axis never affects
//!    simulated IPC) and fan out through a local worker pool or a
//!    running `redbin-served` instance, where re-runs hit the cache.
//! 4. **Frontier** — the Pareto frontier of harmonic-mean IPC versus
//!    adder critical-path delay, reported as JSON, an ASCII table, and
//!    telemetry counters.
//!
//! All stages are deterministic: the same grid always yields the same
//! report document (the golden snapshot under `tests/golden/` pins one).

pub mod backend;
pub mod bounds;
pub mod delay;
pub mod grid;
pub mod pareto;
pub mod prune;
pub mod report;

use std::collections::BTreeMap;

use redbin::telemetry::MetricsRegistry;
use redbin::wire::JobSpec;

use backend::{Backend, SimOutcome};
use delay::adder_delay;
use grid::{GridPoint, GridSpec};
use pareto::Candidate;
use prune::PruneReport;

/// One sound, simulated grid point with both objective values attached.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluatedPoint {
    /// The grid point.
    pub point: GridPoint,
    /// The content-addressed id of the simulation that produced `ipc`.
    pub job_id: String,
    /// Harmonic-mean IPC over the grid's benchmark suite.
    pub ipc: f64,
    /// The suite's static dataflow-limit IPC for this point's model and
    /// width (bypass, steering and `rb_rf_only` cannot raise it).
    pub bound_ipc: f64,
    /// Critical-path delay of the point's adder under its delay model.
    pub delay: f64,
    /// `true` when the backend answered this point's simulation from a
    /// server-side cache.
    pub cache_hit: bool,
}

/// The complete result of one exploration.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// The grid that was explored.
    pub grid: GridSpec,
    /// Static pruning statistics (sound and rejected points).
    pub prune: PruneReport,
    /// Every sound point, in enumeration order, with objectives.
    pub evaluated: Vec<EvaluatedPoint>,
    /// Indices into `evaluated` on the Pareto frontier, sorted by delay
    /// ascending.
    pub frontier: Vec<usize>,
    /// How many distinct simulations the sound points collapsed onto.
    pub unique_sims: usize,
    /// How many of those simulations a server answered from cache.
    pub cache_hits: u64,
    /// Deterministic counters and histograms for the run. No wall-clock
    /// metrics on purpose: the outcome document must be byte-stable.
    pub metrics: MetricsRegistry,
}

/// Histogram bounds (milli-IPC) for the per-point IPC distribution.
const IPC_MILLI_BOUNDS: [u64; 7] = [250, 500, 750, 1000, 1500, 2000, 3000];

/// Runs the full enumerate → prune → simulate → frontier pipeline.
///
/// # Errors
///
/// Returns a message when a machine cannot be built or the backend
/// fails (unreachable server, rejected job, malformed result body).
pub fn explore(grid: &GridSpec, backend: &Backend) -> Result<ExploreOutcome, String> {
    let mut metrics = MetricsRegistry::new();
    metrics.register_histogram("explore.ipc.milli", &IPC_MILLI_BOUNDS);

    let points = grid.enumerate();
    metrics.add("explore.points.enumerated", points.len() as u64);

    let pruned = prune::prune(&points)?;
    metrics.add("explore.points.pruned", pruned.pruned.len() as u64);
    metrics.add("explore.points.sound", pruned.sound.len() as u64);

    // Deduplicate sound points onto content-addressed specs: points that
    // differ only in delay model share one simulation.
    let mut spec_index: BTreeMap<String, usize> = BTreeMap::new();
    let mut specs: Vec<JobSpec> = Vec::new();
    let mut point_spec: Vec<usize> = Vec::with_capacity(pruned.sound.len());
    for p in &pruned.sound {
        let spec = p.job_spec(grid.suite, grid.scale);
        let id = spec.job_id();
        let idx = *spec_index.entry(id).or_insert_with(|| {
            specs.push(spec);
            specs.len() - 1
        });
        point_spec.push(idx);
    }
    metrics.add("explore.sims.unique", specs.len() as u64);

    // The dataflow limit depends only on (model, width): one trace of
    // the suite serves every point, and the per-point query is O(1).
    let suite_bounds = bounds::SuiteBounds::trace(grid.suite, grid.scale);

    let outcomes = backend::run_specs(backend, &specs)?;
    metrics.add("explore.sims.run", outcomes.len() as u64);
    let cache_hits = outcomes.iter().filter(|o| o.cache_hit).count() as u64;
    metrics.add("explore.sims.cache-hits", cache_hits);

    let evaluated: Vec<EvaluatedPoint> = pruned
        .sound
        .iter()
        .zip(&point_spec)
        .map(|(&point, &si)| {
            let SimOutcome {
                ref job_id,
                hmean,
                cache_hit,
            } = outcomes[si];
            EvaluatedPoint {
                point,
                job_id: job_id.clone(),
                ipc: hmean,
                bound_ipc: suite_bounds.bound_ipc(point.model, point.width),
                delay: adder_delay(point.model, point.delay),
                cache_hit,
            }
        })
        .collect();
    for ep in &evaluated {
        metrics.observe("explore.ipc.milli", (ep.ipc * 1000.0).round() as u64);
    }

    let candidates: Vec<Candidate> = evaluated
        .iter()
        .enumerate()
        .map(|(index, ep)| Candidate {
            index,
            ipc: ep.ipc,
            delay: ep.delay,
        })
        .collect();
    let frontier = pareto::frontier(&candidates);
    metrics.add("explore.frontier.points", frontier.len() as u64);

    Ok(ExploreOutcome {
        grid: grid.clone(),
        prune: pruned,
        evaluated,
        frontier,
        unique_sims: specs.len(),
        cache_hits,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local() -> Backend {
        Backend::Local {
            threads: 0,
            reference: false,
        }
    }

    #[test]
    fn golden_grid_end_to_end() {
        let grid = GridSpec::golden_small();
        let out = explore(&grid, &local()).expect("explores");
        assert_eq!(out.prune.total(), 8);
        assert!(out.prune.pruned.is_empty());
        assert_eq!(out.evaluated.len(), 8);
        // All 8 points have distinct machines, so no dedup here.
        assert_eq!(out.unique_sims, 8);
        assert!(!out.frontier.is_empty());
        // The frontier is sorted by delay and internally non-dominated.
        for w in out.frontier.windows(2) {
            assert!(out.evaluated[w[0]].delay <= out.evaluated[w[1]].delay);
        }
        // No configuration beats its own dataflow limit.
        for ep in &out.evaluated {
            assert!(ep.bound_ipc > 0.0);
            assert!(ep.ipc <= ep.bound_ipc + 1e-9, "{}", ep.point.label());
        }
        assert_eq!(out.metrics.counter("explore.points.enumerated"), 8);
        assert_eq!(out.metrics.counter("explore.sims.cache-hits"), 0);
    }

    #[test]
    fn delay_axis_dedups_onto_shared_sims() {
        let mut grid = GridSpec::golden_small();
        grid.delay_models = vec![
            delay::DelayModelSpec::UnitGate,
            delay::DelayModelSpec::FanoutAware(0.2),
        ];
        let out = explore(&grid, &local()).expect("explores");
        assert_eq!(out.evaluated.len(), 16);
        assert_eq!(out.unique_sims, 8, "delay axis must not split sims");
        // Paired points agree on IPC but not (generally) on delay.
        for pair in out.evaluated.chunks(2) {
            assert_eq!(pair[0].ipc, pair[1].ipc);
            assert_eq!(pair[0].job_id, pair[1].job_id);
        }
    }
}
