//! The frontier's delay axis: pricing each core model's adder with the
//! gate-level netlists from `redbin-gates`.
//!
//! The paper's argument is that the RB core buys its IPC back in cycle
//! time: a redundant-binary adder has O(1) carry depth where the
//! conventional core needs a full-width (or staggered) two's-complement
//! adder. The explorer prices every grid point's 64-bit adder under a
//! chosen [`DelayModel`] and uses that critical path as the delay axis
//! of the Pareto frontier.

use redbin::gates::adders::{carry_lookahead, rb_adder};
use redbin::gates::staggered::StaggeredAdder;
use redbin::gates::DelayModel;
use redbin::sim::CoreModel;

/// A serializable choice of gate-delay model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayModelSpec {
    /// Every gate costs one unit regardless of fanout.
    UnitGate,
    /// Gate cost grows with fanout: `1 + load_factor * (fanout - 1)`.
    FanoutAware(f64),
}

impl DelayModelSpec {
    /// The wire/CLI name: `unit` or `fanout-<load>`.
    pub fn name(&self) -> String {
        match self {
            DelayModelSpec::UnitGate => "unit".to_string(),
            DelayModelSpec::FanoutAware(load) => format!("fanout-{load}"),
        }
    }

    /// Parses a name produced by [`name`](Self::name).
    ///
    /// # Errors
    ///
    /// Returns a message for unknown names or unparsable load factors.
    pub fn from_name(name: &str) -> Result<Self, String> {
        if name == "unit" {
            return Ok(DelayModelSpec::UnitGate);
        }
        if let Some(load) = name.strip_prefix("fanout-") {
            let load: f64 = load
                .parse()
                .map_err(|_| format!("bad fanout load factor in `{name}`"))?;
            if !load.is_finite() || load < 0.0 {
                return Err(format!("fanout load factor must be finite and >= 0, got `{name}`"));
            }
            return Ok(DelayModelSpec::FanoutAware(load));
        }
        Err(format!(
            "unknown delay model `{name}` (expected `unit` or `fanout-<load>`)"
        ))
    }

    /// The `redbin-gates` model this spec describes.
    pub fn model(&self) -> DelayModel {
        match *self {
            DelayModelSpec::UnitGate => DelayModel::UnitGate,
            DelayModelSpec::FanoutAware(load) => DelayModel::FanoutAware { load_factor: load },
        }
    }
}

/// Word width every adder is priced at. The simulated datapath is
/// 64-bit, so the frontier prices full-width execution.
pub const ADDER_BITS: usize = 64;

/// The critical-path delay (in gate units under `spec`) of the adder
/// each core model commits results through:
///
/// * `Baseline` — a two-part staggered two's-complement adder, the
///   Pentium-4-style structure the paper's conventional core assumes.
/// * `RbLimited` / `RbFull` — the constant-depth redundant-binary adder.
/// * `Ideal` — a full-width carry-lookahead (Kogge–Stone) adder: the
///   no-redundancy oracle still has to resolve carries.
pub fn adder_delay(model: CoreModel, spec: DelayModelSpec) -> f64 {
    let dm = spec.model();
    match model {
        CoreModel::Baseline => StaggeredAdder::new(ADDER_BITS, 2).stage_critical_path(dm),
        CoreModel::RbLimited | CoreModel::RbFull => rb_adder(ADDER_BITS).netlist().critical_path(dm),
        CoreModel::Ideal => carry_lookahead(ADDER_BITS).netlist().critical_path(dm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for spec in [
            DelayModelSpec::UnitGate,
            DelayModelSpec::FanoutAware(0.2),
            DelayModelSpec::FanoutAware(1.5),
        ] {
            assert_eq!(DelayModelSpec::from_name(&spec.name()).unwrap(), spec);
        }
        assert!(DelayModelSpec::from_name("quantum").is_err());
        assert!(DelayModelSpec::from_name("fanout-x").is_err());
        assert!(DelayModelSpec::from_name("fanout--1").is_err());
    }

    #[test]
    fn rb_adder_is_fastest_and_staggered_beats_flat_lookahead_per_stage() {
        for spec in [DelayModelSpec::UnitGate, DelayModelSpec::FanoutAware(0.2)] {
            let rb = adder_delay(CoreModel::RbFull, spec);
            let base = adder_delay(CoreModel::Baseline, spec);
            let ideal = adder_delay(CoreModel::Ideal, spec);
            assert!(rb < base, "RB must beat the staggered adder ({spec:?})");
            assert!(rb < ideal, "RB must beat carry-lookahead ({spec:?})");
            assert_eq!(
                adder_delay(CoreModel::RbLimited, spec),
                adder_delay(CoreModel::RbFull, spec),
                "both RB cores share one adder"
            );
        }
    }
}
