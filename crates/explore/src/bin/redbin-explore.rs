//! `redbin-explore` — design-space exploration over the reproduction's
//! machine configurations.
//!
//! ```text
//! redbin-explore [--grid default|small] [--spec FILE.json]
//!                [--widths 4,8] [--models baseline,rb-limited,rb-full,ideal]
//!                [--bypass Full|No-1|...] [--steering round-robin,dependence-aware]
//!                [--rb-rf-only false,true] [--delay unit,fanout-0.2]
//!                [--suite quick|spec95|spec2000|all] [--scale test|small|full]
//!                [--server HOST:PORT] [--threads N] [--reference]
//!                [--json PATH] [--metrics]
//! ```
//!
//! The grid is the cross product of the axis flags (each a comma list),
//! seeded from `--grid` and/or `--spec` and then overridden per axis.
//! Without `--server` the surviving points simulate in-process; with it
//! they are submitted to a running `redbin-served`, where re-runs of an
//! overlapping grid hit the result cache. The report (pruning summary +
//! Pareto frontier table) goes to stdout; `--json` writes the full
//! machine-readable document.

use std::process::ExitCode;

use redbin::json::{self, Json};
use redbin_explore::backend::Backend;
use redbin_explore::grid::GridSpec;
use redbin_explore::{explore, report};

fn usage() -> ! {
    eprintln!(
        "usage: redbin-explore [--grid default|small] [--spec FILE.json] \
         [--widths LIST] [--models LIST] [--bypass LIST] [--steering LIST] \
         [--rb-rf-only LIST] [--delay LIST] [--suite NAME] [--scale NAME] \
         [--server HOST:PORT] [--threads N] [--reference] [--json PATH] [--metrics]"
    );
    std::process::exit(2)
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("redbin-explore: {msg}");
    std::process::exit(1)
}

#[derive(Default)]
struct Opts {
    grid: Option<String>,
    spec: Option<String>,
    widths: Option<String>,
    models: Option<String>,
    bypass: Option<String>,
    steering: Option<String>,
    rb_rf_only: Option<String>,
    delay: Option<String>,
    suite: Option<String>,
    scale: Option<String>,
    server: Option<String>,
    threads: usize,
    reference: bool,
    json: Option<std::path::PathBuf>,
    metrics: bool,
}

fn parse_args(argv: &[String]) -> Opts {
    let mut o = Opts::default();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail(format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--grid" => o.grid = Some(next("--grid")),
            "--spec" => o.spec = Some(next("--spec")),
            "--widths" => o.widths = Some(next("--widths")),
            "--models" => o.models = Some(next("--models")),
            "--bypass" => o.bypass = Some(next("--bypass")),
            "--steering" => o.steering = Some(next("--steering")),
            "--rb-rf-only" => o.rb_rf_only = Some(next("--rb-rf-only")),
            "--delay" => o.delay = Some(next("--delay")),
            "--suite" => o.suite = Some(next("--suite")),
            "--scale" => o.scale = Some(next("--scale")),
            "--server" => o.server = Some(next("--server")),
            "--threads" => {
                o.threads = next("--threads")
                    .parse()
                    .unwrap_or_else(|_| fail("--threads needs an integer"))
            }
            "--reference" => o.reference = true,
            "--json" => o.json = Some(next("--json").into()),
            "--metrics" => o.metrics = true,
            "--help" | "-h" => usage(),
            other => fail(format!("unknown flag `{other}`")),
        }
    }
    o
}

/// Builds the grid: `--grid`/`--spec` pick a base, each axis flag then
/// overrides one axis. Overrides are expressed through the same strict
/// JSON decoder as `--spec` files, so every value is validated once, in
/// one place.
fn build_grid(o: &Opts) -> GridSpec {
    let base = match o.grid.as_deref() {
        None | Some("default") => GridSpec::default(),
        Some("small") => GridSpec::golden_small(),
        Some(other) => fail(format!("unknown grid `{other}` (expected default|small)")),
    };
    let mut doc = match &o.spec {
        Some(path) => {
            if o.grid.is_some() {
                fail("--grid and --spec are mutually exclusive");
            }
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("reading {path}: {e}")));
            json::parse(&text).unwrap_or_else(|e| fail(format!("{path}: {e}")))
        }
        None => base.to_json(),
    };
    let list = |raw: &str, f: &dyn Fn(&str) -> Json| -> Json {
        Json::Arr(raw.split(',').map(|s| f(s.trim())).collect())
    };
    if let Some(ws) = &o.widths {
        doc.set(
            "widths",
            list(ws, &|s| {
                Json::UInt(
                    s.parse()
                        .unwrap_or_else(|_| fail(format!("bad width `{s}`"))),
                )
            }),
        );
    }
    let str_axis = [
        ("models", &o.models),
        ("bypass", &o.bypass),
        ("steering", &o.steering),
        ("delay-models", &o.delay),
    ];
    for (key, value) in str_axis {
        if let Some(raw) = value {
            doc.set(key, list(raw, &|s| Json::Str(s.to_string())));
        }
    }
    if let Some(raw) = &o.rb_rf_only {
        doc.set(
            "rb-rf-only",
            list(raw, &|s| match s {
                "true" => Json::Bool(true),
                "false" => Json::Bool(false),
                other => fail(format!("bad --rb-rf-only value `{other}`")),
            }),
        );
    }
    if let Some(s) = &o.suite {
        doc.set("suite", Json::Str(s.clone()));
    }
    if let Some(s) = &o.scale {
        doc.set("scale", Json::Str(s.clone()));
    }
    GridSpec::from_json(&doc).unwrap_or_else(|e| fail(e))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&argv);
    let grid = build_grid(&opts);
    let backend = match &opts.server {
        Some(addr) => {
            if opts.reference {
                fail("--reference only applies to the local backend");
            }
            Backend::Server { addr: addr.clone() }
        }
        None => Backend::Local {
            threads: opts.threads,
            reference: opts.reference,
        },
    };
    eprintln!(
        "exploring {} points ({})",
        grid.size(),
        match &backend {
            Backend::Local { .. } => "local pool".to_string(),
            Backend::Server { addr } => format!("server {addr}"),
        }
    );
    let outcome = explore(&grid, &backend).unwrap_or_else(|e| fail(e));
    print!("{}", report::render_text(&outcome));
    if opts.metrics {
        eprint!("{}", outcome.metrics.render_text());
    }
    if let Some(path) = &opts.json {
        let doc = report::to_json(&outcome);
        json::write_file(path, &doc)
            .unwrap_or_else(|e| fail(format!("writing {}: {e}", path.display())));
        eprintln!("json: wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
