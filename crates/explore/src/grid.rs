//! The declarative grid specification and its enumeration.
//!
//! A [`GridSpec`] is a cross product over the design axes the paper (and
//! its §4.2 future-work section) exposes: machine width, core model,
//! bypass ablation, scheduler steering, the `rb_rf_only` escape hatch,
//! and the gate-level delay model used for the frontier's delay axis.
//! Every combination becomes one [`GridPoint`]; points that share a
//! simulation identity (the delay model never affects simulated IPC)
//! collapse onto one content-addressed [`JobSpec`], which is what makes
//! re-running a grid against `redbin-served` incremental.

use redbin::json::Json;
use redbin::sim::{BypassLevels, CoreModel, MachineConfig, SteeringPolicy};
use redbin::wire::{
    self, bypass_from_label, model_from_name, model_name, scale_from_name, steering_from_name,
    steering_name, JobSpec, PointSpec, PointSuite,
};
use redbin::workload::Scale;

use crate::delay::DelayModelSpec;

/// A declarative grid: the cross product of every listed axis value.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Machine widths (4 and/or 8).
    pub widths: Vec<usize>,
    /// Core models.
    pub models: Vec<CoreModel>,
    /// Bypass-level configurations (Figure 14 ablations).
    pub bypass: Vec<BypassLevels>,
    /// Scheduler steering policies.
    pub steering: Vec<SteeringPolicy>,
    /// Whether to sweep the RB-register-file-only escape hatch.
    pub rb_rf_only: Vec<bool>,
    /// Gate-level delay models for the frontier's delay axis.
    pub delay_models: Vec<DelayModelSpec>,
    /// The benchmark set every point simulates.
    pub suite: PointSuite,
    /// Workload scale.
    pub scale: Scale,
}

impl Default for GridSpec {
    /// The full default grid: 2 widths x 4 models x 7 bypass configs x
    /// 2 steering policies x 2 rb-rf-only settings x 2 delay models =
    /// 448 points, of which the §4.2 pathology prunes 48 before any
    /// simulation is spent.
    fn default() -> Self {
        GridSpec {
            widths: vec![4, 8],
            models: CoreModel::all().to_vec(),
            bypass: vec![
                BypassLevels::FULL,
                BypassLevels::without(&[1]),
                BypassLevels::without(&[2]),
                BypassLevels::without(&[3]),
                BypassLevels::without(&[1, 2]),
                BypassLevels::without(&[2, 3]),
                BypassLevels::without(&[1, 2, 3]),
            ],
            steering: vec![
                SteeringPolicy::RoundRobinPairs,
                SteeringPolicy::DependenceAware,
            ],
            rb_rf_only: vec![false, true],
            delay_models: vec![DelayModelSpec::UnitGate, DelayModelSpec::FanoutAware(0.2)],
            suite: PointSuite::Quick,
            scale: Scale::Test,
        }
    }
}

impl GridSpec {
    /// The small fixed grid behind the pinned golden frontier snapshot
    /// (`tests/golden/explore_frontier_test.json`): the four models at
    /// width 8 under `Full` and `No-2` bypass, unit-gate delay.
    pub fn golden_small() -> Self {
        GridSpec {
            widths: vec![8],
            models: CoreModel::all().to_vec(),
            bypass: vec![BypassLevels::FULL, BypassLevels::without(&[2])],
            steering: vec![SteeringPolicy::RoundRobinPairs],
            rb_rf_only: vec![false],
            delay_models: vec![DelayModelSpec::UnitGate],
            suite: PointSuite::Quick,
            scale: Scale::Test,
        }
    }

    /// The number of points [`enumerate`](Self::enumerate) will yield.
    pub fn size(&self) -> usize {
        self.models.len()
            * self.widths.len()
            * self.bypass.len()
            * self.steering.len()
            * self.rb_rf_only.len()
            * self.delay_models.len()
    }

    /// Enumerates every point of the grid in a deterministic nested order
    /// (model, width, bypass, steering, rb-rf-only, delay model — the
    /// delay axis innermost, so points sharing a simulation identity are
    /// adjacent).
    pub fn enumerate(&self) -> Vec<GridPoint> {
        let mut out = Vec::with_capacity(self.size());
        for &model in &self.models {
            for &width in &self.widths {
                for &bypass in &self.bypass {
                    for &steering in &self.steering {
                        for &rb_rf_only in &self.rb_rf_only {
                            for &delay in &self.delay_models {
                                out.push(GridPoint {
                                    model,
                                    width,
                                    bypass,
                                    steering,
                                    rb_rf_only,
                                    delay,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Serializes the grid for the report document.
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.set(
            "widths",
            Json::Arr(self.widths.iter().map(|&w| Json::UInt(w as u64)).collect()),
        );
        o.set(
            "models",
            Json::Arr(
                self.models
                    .iter()
                    .map(|&m| Json::Str(model_name(m).to_string()))
                    .collect(),
            ),
        );
        o.set(
            "bypass",
            Json::Arr(self.bypass.iter().map(|b| Json::Str(b.label())).collect()),
        );
        o.set(
            "steering",
            Json::Arr(
                self.steering
                    .iter()
                    .map(|&s| Json::Str(steering_name(s).to_string()))
                    .collect(),
            ),
        );
        o.set(
            "rb-rf-only",
            Json::Arr(self.rb_rf_only.iter().map(|&b| Json::Bool(b)).collect()),
        );
        o.set(
            "delay-models",
            Json::Arr(
                self.delay_models
                    .iter()
                    .map(|d| Json::Str(d.name()))
                    .collect(),
            ),
        );
        o.set("suite", Json::Str(self.suite.name().to_string()));
        o.set("scale", Json::Str(wire::scale_name(self.scale).to_string()));
        o
    }

    /// Decodes a grid from a JSON spec document. Every key is optional
    /// and defaults to the corresponding axis of [`GridSpec::default`];
    /// unknown values are rejected, never guessed at.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending key/value.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let mut spec = GridSpec::default();
        let str_items = |v: &Json, key: &str| -> Result<Option<Vec<String>>, String> {
            match v.get(key) {
                None => Ok(None),
                Some(Json::Arr(items)) => {
                    let mut out = Vec::with_capacity(items.len());
                    for item in items {
                        match item.as_str() {
                            Some(s) => out.push(s.to_string()),
                            None => return Err(format!("`{key}` entries must be strings")),
                        }
                    }
                    Ok(Some(out))
                }
                Some(_) => Err(format!("`{key}` must be an array")),
            }
        };
        if let Some(ws) = v.get("widths") {
            let items = ws
                .as_array()
                .ok_or_else(|| "`widths` must be an array".to_string())?;
            let mut widths = Vec::with_capacity(items.len());
            for item in items {
                let w = item
                    .as_u64()
                    .ok_or_else(|| "`widths` entries must be integers".to_string())?;
                if w != 4 && w != 8 {
                    return Err(format!("unsupported width {w} (expected 4 or 8)"));
                }
                widths.push(w as usize);
            }
            spec.widths = widths;
        }
        if let Some(names) = str_items(v, "models")? {
            spec.models = names
                .iter()
                .map(|n| model_from_name(n).map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?;
        }
        if let Some(labels) = str_items(v, "bypass")? {
            spec.bypass = labels
                .iter()
                .map(|l| bypass_from_label(l).map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?;
        }
        if let Some(names) = str_items(v, "steering")? {
            spec.steering = names
                .iter()
                .map(|n| steering_from_name(n).map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?;
        }
        if let Some(flags) = v.get("rb-rf-only") {
            let items = flags
                .as_array()
                .ok_or_else(|| "`rb-rf-only` must be an array".to_string())?;
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Json::Bool(b) => out.push(*b),
                    _ => return Err("`rb-rf-only` entries must be booleans".to_string()),
                }
            }
            spec.rb_rf_only = out;
        }
        if let Some(names) = str_items(v, "delay-models")? {
            spec.delay_models = names
                .iter()
                .map(|n| DelayModelSpec::from_name(n))
                .collect::<Result<_, _>>()?;
        }
        if let Some(s) = v.get("suite") {
            let name = s
                .as_str()
                .ok_or_else(|| "`suite` must be a string".to_string())?;
            spec.suite = PointSuite::from_name(name).map_err(|e| e.to_string())?;
        }
        if let Some(s) = v.get("scale") {
            let name = s
                .as_str()
                .ok_or_else(|| "`scale` must be a string".to_string())?;
            spec.scale = scale_from_name(name).map_err(|e| e.to_string())?;
        }
        for axis in [
            ("widths", spec.widths.is_empty()),
            ("models", spec.models.is_empty()),
            ("bypass", spec.bypass.is_empty()),
            ("steering", spec.steering.is_empty()),
            ("rb-rf-only", spec.rb_rf_only.is_empty()),
            ("delay-models", spec.delay_models.is_empty()),
        ] {
            if axis.1 {
                return Err(format!("axis `{}` must not be empty", axis.0));
            }
        }
        Ok(spec)
    }
}

/// One point of the grid: a machine configuration plus the delay model
/// that prices its adder on the frontier's delay axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// The §5.1 core model.
    pub model: CoreModel,
    /// Machine width.
    pub width: usize,
    /// Bypass-level configuration.
    pub bypass: BypassLevels,
    /// Scheduler steering policy.
    pub steering: SteeringPolicy,
    /// The RB-register-file-only escape hatch.
    pub rb_rf_only: bool,
    /// The delay model pricing this point's adder.
    pub delay: DelayModelSpec,
}

impl GridPoint {
    /// A compact human-readable label for tables and logs.
    pub fn label(&self) -> String {
        format!(
            "{} w{} {} {}{} {}",
            self.model.name(),
            self.width,
            self.bypass.label(),
            steering_name(self.steering),
            if self.rb_rf_only { " rb-rf-only" } else { "" },
            self.delay.name(),
        )
    }

    /// Builds the machine this point describes — the same configuration
    /// the point's [`JobSpec`] resolves to on a server.
    ///
    /// # Errors
    ///
    /// Returns a message if the width is structurally invalid (only
    /// possible when a [`GridSpec`] is constructed by hand, bypassing
    /// the validated decode paths).
    pub fn machine(&self) -> Result<MachineConfig, String> {
        let mut cfg = MachineConfig::builder(self.model, self.width)
            .bypass(self.bypass)
            .steering(self.steering)
            .build()
            .map_err(|e| e.to_string())?;
        if self.rb_rf_only {
            cfg = cfg.with_rb_rf_only();
        }
        Ok(cfg)
    }

    /// The content-addressed job this point's simulation resolves to.
    /// The delay model is deliberately absent — it cannot affect
    /// simulated IPC, so pricing the same machine under several delay
    /// models reuses one cached result.
    pub fn job_spec(&self, suite: PointSuite, scale: Scale) -> JobSpec {
        let mut spec = JobSpec::point(
            PointSpec {
                model: self.model,
                width: self.width,
                steering: self.steering,
                suite,
            },
            scale,
        );
        // Normalize: a full network is the machine default, so folding it
        // as an override would split the cache key for no reason.
        if self.bypass != BypassLevels::FULL {
            spec = spec.with_bypass(self.bypass);
        }
        if self.rb_rf_only {
            spec = spec.with_rb_rf_only();
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redbin::json;

    #[test]
    fn default_grid_is_large_and_deterministic() {
        let spec = GridSpec::default();
        assert_eq!(spec.size(), 448);
        let points = spec.enumerate();
        assert_eq!(points.len(), 448);
        assert_eq!(points, spec.enumerate());
        // The delay axis is innermost: adjacent points share a sim key.
        assert_eq!(
            points[0].job_spec(spec.suite, spec.scale).job_id(),
            points[1].job_spec(spec.suite, spec.scale).job_id()
        );
        assert_ne!(points[0].delay.name(), points[1].delay.name());
    }

    #[test]
    fn golden_small_grid_shape() {
        let spec = GridSpec::golden_small();
        assert_eq!(spec.size(), 8);
        for p in spec.enumerate() {
            assert!(p.machine().is_ok());
        }
    }

    #[test]
    fn full_bypass_does_not_split_the_cache_key() {
        let spec = GridSpec::golden_small();
        let full = spec
            .enumerate()
            .into_iter()
            .find(|p| p.bypass == BypassLevels::FULL)
            .unwrap();
        let job = full.job_spec(spec.suite, spec.scale);
        assert_eq!(job.bypass, None, "Full folds as the default");
        assert!(!job.rb_rf_only);
    }

    #[test]
    fn json_roundtrip_and_strictness() {
        let spec = GridSpec::default();
        let back = GridSpec::from_json(&spec.to_json()).expect("roundtrips");
        assert_eq!(back, spec);

        let small = json::parse(
            r#"{"widths":[8],"models":["ideal"],"bypass":["No-2"],
                "steering":["dependence-aware"],"rb-rf-only":[false],
                "delay-models":["fanout-0.25"],"suite":"spec95","scale":"small"}"#,
        )
        .unwrap();
        let g = GridSpec::from_json(&small).expect("parses");
        assert_eq!(g.size(), 1);
        assert_eq!(g.models, vec![CoreModel::Ideal]);
        assert_eq!(g.scale, Scale::Small);

        for bad in [
            r#"{"widths":[6]}"#,
            r#"{"models":["pentium"]}"#,
            r#"{"bypass":["No-4"]}"#,
            r#"{"steering":["static"]}"#,
            r#"{"delay-models":["quantum"]}"#,
            r#"{"suite":"huge"}"#,
            r#"{"models":[]}"#,
        ] {
            let doc = json::parse(bad).unwrap();
            assert!(GridSpec::from_json(&doc).is_err(), "{bad} must be rejected");
        }
    }
}
