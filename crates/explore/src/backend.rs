//! Execution backends: where the surviving (sound, deduplicated) grid
//! points actually get simulated.
//!
//! * [`Backend::Local`] fans the specs through the deterministic
//!   in-process worker pool (`redbin::pool::run_jobs`) — the default,
//!   no server required.
//! * [`Backend::Server`] submits each spec to a running `redbin-served`
//!   instance over the wire protocol. Because every spec is
//!   content-addressed, a re-run of the same (or an overlapping) grid
//!   reuses the server's result cache; the reported `cache_hit` flags
//!   make that reuse observable.

use std::time::Duration;

use redbin::experiments;
use redbin::json::Json;
use redbin::pool::run_jobs;
use redbin::wire::JobSpec;
use redbin_serve::Client;

/// Where simulations run.
#[derive(Debug, Clone, PartialEq)]
pub enum Backend {
    /// In-process worker pool.
    Local {
        /// Worker threads for the fan-out (0 = one per spec, capped by
        /// the pool itself).
        threads: usize,
        /// Use the O(n²) reference scheduler instead of the event-driven
        /// one (they are bit-identical; this exists to prove it).
        reference: bool,
    },
    /// A running `redbin-served` instance.
    Server {
        /// `host:port` of the server.
        addr: String,
    },
}

/// How long a server-side job may take end to end before the client
/// gives up. Grids submit small Test-scale jobs; ten minutes is a wide
/// margin even on a loaded machine.
const SERVER_JOB_TIMEOUT: Duration = Duration::from_secs(600);

/// The result of simulating one deduplicated spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// The spec's content-addressed job id.
    pub job_id: String,
    /// Harmonic-mean IPC over the spec's benchmark suite.
    pub hmean: f64,
    /// `true` when a server answered from its result cache.
    pub cache_hit: bool,
}

/// Runs every spec through the chosen backend, preserving order.
///
/// # Errors
///
/// Returns a message naming the spec that failed (unbuildable machine,
/// wire error, server rejection, or a result body missing its
/// `hmean-ipc`).
pub fn run_specs(backend: &Backend, specs: &[JobSpec]) -> Result<Vec<SimOutcome>, String> {
    match backend {
        Backend::Local { threads, reference } => run_local(specs, *threads, *reference),
        Backend::Server { addr } => run_server(specs, addr),
    }
}

fn run_local(specs: &[JobSpec], threads: usize, reference: bool) -> Result<Vec<SimOutcome>, String> {
    let threads = if threads == 0 { specs.len() } else { threads };
    // One pool across points; each point simulates its benchmarks
    // serially (inner threads = 1) so parallelism comes from the grid.
    run_jobs(specs.len(), threads.max(1), |i| {
        let spec = &specs[i];
        let machine = spec
            .machine_configs()
            .into_iter()
            .next()
            .ok_or_else(|| format!("job {} has no buildable machine", spec.job_id()))?;
        let benches = spec
            .point
            .map(|p| p.suite.benchmarks())
            .unwrap_or_default();
        let result =
            experiments::run_point_with(&machine, &benches, spec.scale, 1, reference);
        Ok(SimOutcome {
            job_id: spec.job_id(),
            hmean: result.hmean,
            cache_hit: false,
        })
    })
    .into_iter()
    .collect()
}

fn run_server(specs: &[JobSpec], addr: &str) -> Result<Vec<SimOutcome>, String> {
    let client = Client::new(addr);
    let mut out = Vec::with_capacity(specs.len());
    for spec in specs {
        let job_id = spec.job_id();
        let (_, body, cache_hit) = client
            .run_to_completion(spec.clone(), None, SERVER_JOB_TIMEOUT)
            .map_err(|e| format!("job {job_id} failed against {addr}: {e}"))?;
        let hmean = body
            .get("hmean-ipc")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("job {job_id}: result body has no `hmean-ipc`"))?;
        out.push(SimOutcome {
            job_id,
            hmean,
            cache_hit,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;

    #[test]
    fn local_backend_simulates_the_golden_grid() {
        let grid = GridSpec::golden_small();
        let specs: Vec<JobSpec> = grid
            .enumerate()
            .iter()
            .map(|p| p.job_spec(grid.suite, grid.scale))
            .collect();
        let outcomes = run_specs(
            &Backend::Local {
                threads: 0,
                reference: false,
            },
            &specs,
        )
        .expect("golden grid simulates");
        assert_eq!(outcomes.len(), specs.len());
        for (o, spec) in outcomes.iter().zip(&specs) {
            assert_eq!(o.job_id, spec.job_id());
            assert!(o.hmean > 0.0, "{}: IPC must be positive", o.job_id);
            assert!(!o.cache_hit);
        }
    }
}
