//! The IPC-vs-delay Pareto frontier.
//!
//! A design point is *dominated* when another point is at least as good
//! on both axes (IPC higher-is-better, adder delay lower-is-better) and
//! strictly better on at least one. The frontier is the set of
//! non-dominated points; ties are kept (two points with identical IPC
//! and delay dominate neither, so both survive), which matters because
//! distinct machines frequently share an adder and an IPC.

/// A point in objective space, tagged with its index into the caller's
/// point list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Index into the caller's evaluated-point list.
    pub index: usize,
    /// Harmonic-mean IPC over the point's benchmark suite (higher is
    /// better).
    pub ipc: f64,
    /// Critical-path delay of the point's adder in gate units (lower is
    /// better).
    pub delay: f64,
}

/// `true` when `a` dominates `b`: at least as good on both axes and
/// strictly better on one.
pub fn dominates(a: &Candidate, b: &Candidate) -> bool {
    a.ipc >= b.ipc && a.delay <= b.delay && (a.ipc > b.ipc || a.delay < b.delay)
}

/// Returns the indices (into `points`) of the Pareto frontier, sorted by
/// delay ascending and, within equal delay, IPC descending then original
/// index. Runs in O(n log n) via a sweep, with semantics identical to
/// the O(n²) all-pairs definition — including exact-tie retention.
pub fn frontier(points: &[Candidate]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .delay
            .total_cmp(&points[b].delay)
            .then(points[b].ipc.total_cmp(&points[a].ipc))
            .then(a.cmp(&b))
    });

    let mut keep = Vec::new();
    // Strictly below this IPC a point is dominated by something cheaper.
    let mut best_ipc = f64::NEG_INFINITY;
    let mut i = 0;
    while i < order.len() {
        // Points sharing one delay can't dominate each other on delay, so
        // the whole group is judged against cheaper delays only.
        let mut j = i;
        while j < order.len() && points[order[j]].delay.total_cmp(&points[order[i]].delay).is_eq() {
            j += 1;
        }
        let group_max = points[order[i]].ipc; // sorted IPC-descending within the group
        if group_max > best_ipc {
            // Every group member tying the max survives; lower-IPC members
            // are dominated by the max (same delay, strictly more IPC).
            for &idx in &order[i..j] {
                if points[idx].ipc.total_cmp(&group_max).is_eq() {
                    keep.push(idx);
                }
            }
            best_ipc = group_max;
        }
        i = j;
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use redbin_testkit::Rng;

    /// The O(n²) reference: keep exactly the non-dominated points.
    fn brute_force(points: &[Candidate]) -> Vec<usize> {
        (0..points.len())
            .filter(|&i| !points.iter().any(|p| dominates(p, &points[i])))
            .collect()
    }

    fn cands(pairs: &[(f64, f64)]) -> Vec<Candidate> {
        pairs
            .iter()
            .enumerate()
            .map(|(index, &(ipc, delay))| Candidate { index, ipc, delay })
            .collect()
    }

    fn sorted(mut v: Vec<usize>) -> Vec<usize> {
        v.sort_unstable();
        v
    }

    #[test]
    fn hand_cases() {
        // Empty and singleton.
        assert!(frontier(&[]).is_empty());
        assert_eq!(frontier(&cands(&[(1.0, 5.0)])), vec![0]);
        // A classic staircase with one dominated interior point.
        let pts = cands(&[(1.0, 1.0), (2.0, 2.0), (1.5, 3.0), (3.0, 4.0)]);
        assert_eq!(sorted(frontier(&pts)), vec![0, 1, 3]);
        // Exact ties on both axes: both survive.
        let pts = cands(&[(2.0, 2.0), (2.0, 2.0), (1.0, 1.0)]);
        assert_eq!(sorted(frontier(&pts)), vec![0, 1, 2]);
        // Same delay, different IPC: only the max survives.
        let pts = cands(&[(2.0, 2.0), (3.0, 2.0)]);
        assert_eq!(frontier(&pts), vec![1]);
        // A point dominated only through an equal-delay rival.
        let pts = cands(&[(3.0, 1.0), (2.0, 1.0), (2.5, 2.0)]);
        assert_eq!(sorted(frontier(&pts)), vec![0]);
    }

    #[test]
    fn matches_brute_force_on_random_clouds() {
        let mut rng = Rng::new(0x9e3779b97f4a7c15);
        for case in 0..200 {
            let n = rng.range_usize(0, 40);
            // Coarse buckets force frequent exact ties on both axes.
            let pts: Vec<Candidate> = (0..n)
                .map(|index| Candidate {
                    index,
                    ipc: rng.range_u64(0, 8) as f64 * 0.25,
                    delay: rng.range_u64(1, 9) as f64,
                })
                .collect();
            let fast = sorted(frontier(&pts));
            let slow = brute_force(&pts);
            assert_eq!(fast, slow, "case {case}: {pts:?}");
            // Invariants, independently of the reference.
            for &i in &fast {
                assert!(
                    !pts.iter().any(|p| dominates(p, &pts[i])),
                    "kept point {i} is dominated"
                );
            }
            for i in 0..pts.len() {
                if !fast.contains(&i) {
                    assert!(
                        pts.iter().any(|p| dominates(p, &pts[i])),
                        "dropped point {i} is not dominated"
                    );
                }
            }
        }
    }
}
