//! The three-way differential oracle behind the fuzz and whole-program
//! suites.
//!
//! Any program the workspace can express is validated three independent
//! ways, each pair of executions sharing nothing but the ISA definition:
//!
//! 1. **Emulator vs. fast simulator** — the standalone
//!    [`Emulator`](redbin_isa::Emulator) and the timing simulator's
//!    embedded oracle must finish in the same
//!    [`ArchState`](redbin_isa::ArchState) (registers, pc, retirement
//!    count, memory digest).
//! 2. **Fast vs. faithful datapath** — running the redundant-binary
//!    shadow datapath must change *nothing* observable: identical
//!    architectural state and bit-identical [`SimStats`] except the
//!    fidelity-check counter itself.
//! 3. **Event-driven vs. reference scheduler** — the optimized wakeup
//!    scheduler must match the retained `issue_reference` implementation
//!    statistic for statistic.
//!
//! [`check_program`] runs all three legs for one program/machine pair.
//! [`check_seed`] feeds a [`redbin_workload::fuzz`] torture program plus
//! a seed-derived machine configuration through the same oracle and, on
//! failure, packages everything needed to reproduce: the seed, the
//! machine, the failing leg, and the full disassembly.
//!
//! # Example
//!
//! ```
//! use redbin::differential;
//!
//! let verdict = differential::check_seed(7).expect("seed 7 is clean");
//! assert!(verdict.retired > 0);
//! ```

use redbin_isa::{Emulator, Program};
use redbin_sim::{
    BypassLevels, CoreModel, DatapathMode, MachineConfig, SimStats, Simulator, SteeringPolicy,
};
use redbin_testkit::Rng;
use redbin_workload::fuzz;

/// Emulator step budget for oracle runs — far above any bundled workload
/// (the full-scale suite retires tens of millions of instructions at most)
/// but finite, so a non-terminating program fails instead of hanging.
pub const EMULATOR_STEP_BOUND: u64 = 200_000_000;

/// What a clean three-way differential run measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleVerdict {
    /// Retired instructions (identical across all executions by
    /// construction — the oracle fails otherwise).
    pub retired: u64,
    /// Simulated cycles of the fast run.
    pub cycles: u64,
    /// IPC of the fast run.
    pub ipc: f64,
    /// Fidelity assertions the faithful leg executed.
    pub fidelity_checks: u64,
}

/// One leg of the oracle disagreeing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleFailure {
    /// The program's name.
    pub program: String,
    /// Which comparison failed (`"emulator"`, `"emulator-vs-fast"`,
    /// `"fast-vs-faithful"`, `"event-driven-vs-reference"`, …).
    pub leg: &'static str,
    /// Human-readable detail: the first diverging field, or the error.
    pub detail: String,
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "differential oracle failed on `{}` [{}]: {}",
            self.program, self.leg, self.detail
        )
    }
}

impl std::error::Error for OracleFailure {}

/// A fuzz seed failing the oracle, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct SeedFailure {
    /// The failing seed.
    pub seed: u64,
    /// The machine configuration the seed resolved to.
    pub config: MachineConfig,
    /// The underlying disagreement.
    pub failure: OracleFailure,
    /// The generated program, disassembled ([`fuzz::disassemble`]).
    pub disassembly: String,
}

impl std::fmt::Display for SeedFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.failure)?;
        writeln!(f, "seed: {:#018x}", self.seed)?;
        writeln!(
            f,
            "reproduce: redbin-repro fuzz --start-seed {} --seeds 1",
            self.seed
        )?;
        writeln!(f, "machine: {:?}", self.config)?;
        write!(f, "program:\n{}", self.disassembly)
    }
}

impl std::error::Error for SeedFailure {}

fn fail(program: &Program, leg: &'static str, detail: impl Into<String>) -> OracleFailure {
    OracleFailure {
        program: program.name.clone(),
        leg,
        detail: detail.into(),
    }
}

/// Runs the three-way differential oracle for one program on one machine.
///
/// `base`'s datapath mode is ignored: the oracle always runs both the
/// fast and the faithful datapath itself.
///
/// # Errors
///
/// Returns the first [`OracleFailure`] encountered, in leg order.
pub fn check_program(
    program: &Program,
    base: &MachineConfig,
) -> Result<OracleVerdict, OracleFailure> {
    // Leg 0: the standalone emulator defines the architectural truth.
    let mut emu = Emulator::new(program);
    emu.run(EMULATOR_STEP_BOUND)
        .map_err(|e| fail(program, "emulator", e.to_string()))?;
    let expect = emu.arch_state();

    // Leg 1: the fast simulator must land in the same architectural state.
    let fast_cfg = base.clone().with_datapath(DatapathMode::Fast);
    let (fast, fast_arch) = Simulator::new(fast_cfg.clone(), program)
        .run_with_arch()
        .map_err(|e| fail(program, "fast-simulator", e.to_string()))?;
    if let Some(d) = expect.diff(&fast_arch) {
        return Err(fail(program, "emulator-vs-fast", d));
    }

    // Leg 2: the faithful datapath is a checker, not a behavior change.
    let faithful_cfg = base.clone().with_datapath(DatapathMode::Faithful);
    let (mut faithful, faithful_arch) = Simulator::new(faithful_cfg, program)
        .run_with_arch()
        .map_err(|e| fail(program, "faithful-simulator", e.to_string()))?;
    if let Some(d) = expect.diff(&faithful_arch) {
        return Err(fail(program, "emulator-vs-faithful", d));
    }
    let fidelity_checks = faithful.fidelity_checks;
    faithful.fidelity_checks = fast.fidelity_checks;
    if fast != faithful {
        return Err(fail(
            program,
            "fast-vs-faithful",
            stats_diff(&fast, &faithful),
        ));
    }

    // Leg 3: the event-driven scheduler against the retained reference.
    let reference = Simulator::new(fast_cfg, program)
        .with_reference_scheduler()
        .run()
        .map_err(|e| fail(program, "reference-scheduler", e.to_string()))?;
    if fast != reference {
        return Err(fail(
            program,
            "event-driven-vs-reference",
            stats_diff(&fast, &reference),
        ));
    }

    Ok(OracleVerdict {
        retired: fast.retired,
        cycles: fast.cycles,
        ipc: fast.ipc(),
        fidelity_checks,
    })
}

/// Summarizes how two stats blocks differ (headline counters only; the
/// full structures are available to a debugger via the failing test).
fn stats_diff(a: &SimStats, b: &SimStats) -> String {
    for (name, x, y) in [
        ("cycles", a.cycles, b.cycles),
        ("retired", a.retired, b.retired),
        ("mispredicts", a.mispredicts, b.mispredicts),
        ("bypassed-operands", a.bypassed_operands, b.bypassed_operands),
        ("regfile-operands", a.regfile_operands, b.regfile_operands),
        ("store-forwards", a.store_forwards, b.store_forwards),
        ("stall-used", a.stall.used, b.stall.used),
    ] {
        if x != y {
            return format!("{name}: {x} vs {y}");
        }
    }
    "stats differ outside the headline counters".to_string()
}

/// Derives a sound, shipped-shape machine configuration from a fuzz seed:
/// model × width plus one bypass/steering/datapath-layout variant.
///
/// Mirrors the scheduler differential suite's config generator, including
/// its soundness constraint: `rb_rf_only` always keeps full bypass, since
/// dropping level 3 there makes some operands statically unreachable
/// (`redbin-analyze` rejects that machine as unsound).
pub fn torture_config(seed: u64) -> MachineConfig {
    // Decorrelate from the program stream, which consumes `seed` directly.
    let mut rng = Rng::new(seed ^ 0xC0F1_6D1F_F00D_5EED);
    let model = *rng.pick(CoreModel::all());
    let width = if rng.next_bool() { 4 } else { 8 };
    let mut cfg = MachineConfig::new(model, width);
    match rng.range_u64(0, 7) {
        0 => cfg = cfg.with_bypass(BypassLevels::without(&[2])),
        1 => cfg = cfg.with_bypass(BypassLevels::without(&[3])),
        2 => cfg = cfg.with_bypass(BypassLevels::without(&[2, 3])),
        3 => cfg = cfg.with_steering(SteeringPolicy::DependenceAware),
        4 => cfg = cfg.with_rb_rf_only(),
        _ => {}
    }
    // A divergence that deadlocks a scheduler must fail fast, not hang CI.
    cfg.max_cycles = 2_000_000;
    cfg
}

/// Runs one fuzz seed through the oracle: generates the torture program
/// and machine from the seed, then delegates to [`check_program`].
///
/// # Errors
///
/// Returns a [`SeedFailure`] carrying the seed, machine, and disassembly
/// alongside the underlying [`OracleFailure`] — a self-contained repro.
pub fn check_seed(seed: u64) -> Result<OracleVerdict, Box<SeedFailure>> {
    let program = fuzz::torture_program(seed);
    let config = torture_config(seed);
    check_program(&program, &config).map_err(|failure| {
        Box::new(SeedFailure {
            seed,
            config,
            failure,
            disassembly: fuzz::disassemble(&program),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use redbin_workload::{Benchmark, Scale};

    #[test]
    fn a_proxy_kernel_passes_all_three_legs() {
        let program = Benchmark::Gzip.program(Scale::Test);
        let verdict = check_program(&program, &MachineConfig::rb_full(8)).expect("clean");
        assert!(verdict.retired > 0);
        assert!(verdict.fidelity_checks > 0, "faithful leg must check");
    }

    #[test]
    fn torture_configs_are_always_statically_sound() {
        for seed in 0..256u64 {
            let cfg = torture_config(seed);
            assert!(
                !cfg.rb_rf_only || cfg.bypass == BypassLevels::FULL,
                "seed {seed}: rb_rf_only with limited bypass is unsound"
            );
            assert_eq!(cfg.max_cycles, 2_000_000);
        }
    }

    #[test]
    fn a_handful_of_seeds_pass_the_oracle() {
        for seed in 0..4u64 {
            let v = check_seed(seed).unwrap_or_else(|f| panic!("{f}"));
            assert!(v.retired > 10, "seed {seed} retired {}", v.retired);
        }
    }

    #[test]
    fn failures_render_a_reproducible_report() {
        let f = SeedFailure {
            seed: 0x2A,
            config: MachineConfig::rb_full(8),
            failure: OracleFailure {
                program: "torture-0x2a".into(),
                leg: "emulator-vs-fast",
                detail: "reg r9: 1 vs 2".into(),
            },
            disassembly: "        halt\n".into(),
        };
        let text = f.to_string();
        assert!(text.contains("--start-seed 42"), "{text}");
        assert!(text.contains("halt"), "{text}");
        assert!(text.contains("emulator-vs-fast"), "{text}");
    }
}
