//! Experiment drivers: one function per table/figure of the paper.
//!
//! Every driver runs the relevant simulations (in parallel across
//! benchmarks) and returns a structured result; [`crate::report`] renders
//! them as text. The `repro-*` binaries in `redbin-bench` are thin wrappers
//! over these functions, so library users can regenerate any figure
//! programmatically.

use redbin_isa::class::LatencyClass;
use redbin_isa::format::Table1Counts;
use redbin_isa::{Emulator, Opcode};
use redbin_sim::stats::{harmonic_mean, BypassCases};
use redbin_sim::{
    BypassLevels, CoreModel, DatapathMode, MachineConfig, SimStats, Simulator, SteeringPolicy,
};
use redbin_workload::{Benchmark, Scale, Suite, WholeProgram};

use crate::pool::run_jobs;

/// Global settings for an experiment run.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Workload size (the figures use [`Scale::Full`]).
    pub scale: Scale,
    /// Worker threads for the benchmark fan-out.
    pub threads: usize,
    /// Whether to run the redundant shadow datapath (slower; used by the
    /// fidelity experiments).
    pub datapath: DatapathMode,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: Scale::Full,
            threads: std::thread::available_parallelism()
                .map(|n| n.get().min(16))
                .unwrap_or(4),
            datapath: DatapathMode::Fast,
        }
    }
}

impl ExperimentConfig {
    /// A configuration suitable for tests: small workloads, few threads.
    pub fn quick() -> Self {
        ExperimentConfig {
            scale: Scale::Test,
            ..Default::default()
        }
    }

    /// Folds the result-affecting fields into `h` in canonical order.
    ///
    /// Deliberately excludes `threads`: the worker count changes wall-clock
    /// time but never the result ([`crate::pool::run_jobs`] preserves
    /// order), so two runs differing only in parallelism share a cache key.
    pub fn fold_canonical(&self, h: &mut redbin_sim::hash::Fnv64) {
        h.write_tag(0xB0); // domain tag: ExperimentConfig
        h.write_tag(match self.scale {
            Scale::Test => 0,
            Scale::Small => 1,
            Scale::Full => 2,
        });
        h.write_tag(match self.datapath {
            DatapathMode::Fast => 0,
            DatapathMode::Faithful => 1,
        });
    }

    /// A stable, platform-independent FNV-1a fingerprint of the
    /// result-affecting experiment settings (scale, datapath — not
    /// `threads`; see [`Self::fold_canonical`]).
    pub fn canonical_hash(&self) -> u64 {
        let mut h = redbin_sim::hash::Fnv64::new();
        self.fold_canonical(&mut h);
        h.finish()
    }
}

/// Runs one benchmark on one machine and returns its statistics.
///
/// # Panics
///
/// Panics if the simulation faults (all bundled benchmarks are well-formed).
pub fn run_one(
    model: CoreModel,
    width: usize,
    benchmark: Benchmark,
    cfg: &ExperimentConfig,
) -> SimStats {
    let config = MachineConfig::new(model, width).with_datapath(cfg.datapath);
    let program = benchmark.program(cfg.scale);
    Simulator::new(config, &program)
        .run()
        .unwrap_or_else(|e| panic!("{benchmark:?} on {model} failed: {e}"))
}

/// One design-space point's simulation outcome: a single machine over a
/// benchmark set (the `point` experiment behind `redbin-explore`).
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Per-benchmark IPC, in the order the benchmarks were given.
    pub rows: Vec<(Benchmark, f64)>,
    /// Harmonic-mean IPC over the rows.
    pub hmean: f64,
    /// Total simulated cycles across the rows.
    pub cycles: u64,
    /// Total retired instructions across the rows.
    pub retired: u64,
}

/// Runs one design-space point: `machine` over `benches` at `scale`,
/// fanning the benchmarks across `threads` workers.
///
/// # Panics
///
/// Panics if a simulation faults (all bundled benchmarks are well-formed
/// on buildable machines).
pub fn run_point(
    machine: &MachineConfig,
    benches: &[Benchmark],
    scale: Scale,
    threads: usize,
) -> PointResult {
    run_point_with(machine, benches, scale, threads, false)
}

/// [`run_point`], optionally on the retained reference scheduler — the
/// behavioral spec the event-driven scheduler is tested against. The two
/// produce bit-identical statistics, which `redbin-explore`'s frontier
/// stability test pins.
///
/// # Panics
///
/// Same conditions as [`run_point`].
pub fn run_point_with(
    machine: &MachineConfig,
    benches: &[Benchmark],
    scale: Scale,
    threads: usize,
    reference: bool,
) -> PointResult {
    let stats = run_jobs(benches.len(), threads, |i| {
        let program = benches[i].program(scale);
        let mut sim = Simulator::new(machine.clone(), &program);
        if reference {
            sim = sim.with_reference_scheduler();
        }
        sim.run()
            .unwrap_or_else(|e| panic!("{:?} on {} failed: {e}", benches[i], machine.model))
    });
    let rows: Vec<(Benchmark, f64)> = benches
        .iter()
        .zip(&stats)
        .map(|(&b, s)| (b, s.ipc()))
        .collect();
    let ipcs: Vec<f64> = rows.iter().map(|&(_, ipc)| ipc).collect();
    PointResult {
        machine: machine.clone(),
        hmean: harmonic_mean(&ipcs),
        cycles: stats.iter().map(|s| s.cycles).sum(),
        retired: stats.iter().map(|s| s.retired).sum(),
        rows,
    }
}

/// One benchmark's IPC under the four machine models, in
/// [`CoreModel::all`] order (Baseline, RB-limited, RB-full, Ideal).
#[derive(Debug, Clone, PartialEq)]
pub struct IpcRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// IPC per machine model.
    pub ipc: [f64; 4],
    /// Full simulator statistics per machine model (stall breakdowns,
    /// cache counters, …) — the source the IPC column is derived from.
    pub stats: Vec<SimStats>,
}

/// The data behind Figures 9–12: per-benchmark IPC for the four machines.
#[derive(Debug, Clone, PartialEq)]
pub struct IpcFigure {
    /// Execution width (4 or 8).
    pub width: usize,
    /// Which suite.
    pub suite: Suite,
    /// One row per benchmark.
    pub rows: Vec<IpcRow>,
}

impl IpcFigure {
    /// Harmonic-mean IPC per machine model.
    pub fn harmonic_means(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        for (m, slot) in out.iter_mut().enumerate() {
            let v: Vec<f64> = self.rows.iter().map(|r| r.ipc[m]).collect();
            *slot = harmonic_mean(&v);
        }
        out
    }

    /// The headline ratios: (RB-full / Baseline − 1, 1 − RB-full / Ideal,
    /// 1 − RB-limited / RB-full), as fractions. An empty figure (or one
    /// with a zero harmonic mean) yields 0.0 ratios rather than NaN/inf,
    /// so JSON documents built from them stay finite.
    pub fn headline_ratios(&self) -> (f64, f64, f64) {
        let hm = self.harmonic_means();
        let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 1.0 };
        (
            ratio(hm[2], hm[0]) - 1.0,
            1.0 - ratio(hm[2], hm[3]),
            1.0 - ratio(hm[1], hm[2]),
        )
    }
}

/// Runs a Figure 9–12 style experiment: all four machines over a suite at
/// one width.
pub fn figure_ipc(width: usize, suite: Suite, cfg: &ExperimentConfig) -> IpcFigure {
    let benches = suite.benchmarks();
    let rows = run_jobs(benches.len(), cfg.threads, |i| {
        let b = benches[i];
        let mut ipc = [0.0; 4];
        let mut stats = Vec::with_capacity(4);
        for (m, model) in CoreModel::all().iter().enumerate() {
            let s = run_one(*model, width, b, cfg);
            ipc[m] = s.ipc();
            stats.push(s);
        }
        IpcRow { benchmark: b, ipc, stats }
    });
    IpcFigure { width, suite, rows }
}

/// Figure 9: 8-wide machines on SPECint2000.
pub fn figure9(cfg: &ExperimentConfig) -> IpcFigure {
    figure_ipc(8, Suite::Spec2000, cfg)
}

/// Figure 10: 8-wide machines on SPECint95.
pub fn figure10(cfg: &ExperimentConfig) -> IpcFigure {
    figure_ipc(8, Suite::Spec95, cfg)
}

/// Figure 11: 4-wide machines on SPECint2000.
pub fn figure11(cfg: &ExperimentConfig) -> IpcFigure {
    figure_ipc(4, Suite::Spec2000, cfg)
}

/// Figure 12: 4-wide machines on SPECint95.
pub fn figure12(cfg: &ExperimentConfig) -> IpcFigure {
    figure_ipc(4, Suite::Spec95, cfg)
}

/// One whole program's results across the four machine models, in
/// [`CoreModel::all`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramRow {
    /// The program.
    pub program: WholeProgram,
    /// The emulator-verified architectural checksum (register `r9`),
    /// already checked against the program's Rust reference.
    pub checksum: u64,
    /// Instructions the emulator retired.
    pub emulated: u64,
    /// IPC per machine model.
    pub ipc: [f64; 4],
    /// Full simulator statistics per machine model.
    pub stats: Vec<SimStats>,
}

///// The whole-program suite result: five complete programs (quicksort,
/// matmul, box blur, prime sieve, QOI-style decoder) on the four machines.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramsReport {
    /// Execution width (8, matching Figures 9/10).
    pub width: usize,
    /// One row per program.
    pub rows: Vec<ProgramRow>,
}

impl ProgramsReport {
    /// Harmonic-mean IPC per machine model.
    pub fn harmonic_means(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        for (m, slot) in out.iter_mut().enumerate() {
            let v: Vec<f64> = self.rows.iter().map(|r| r.ipc[m]).collect();
            *slot = harmonic_mean(&v);
        }
        out
    }
}

/// Runs the whole-program suite on the four 8-wide machines.
///
/// Unlike the proxy-kernel figures this experiment is self-verifying:
/// every simulation's final architectural state is compared against the
/// standalone emulator's, and the emulator's checksum register against
/// the program's Rust reference implementation.
///
/// # Panics
///
/// Panics if any program misbehaves: wrong checksum, architectural
/// divergence between emulator and simulator, or a simulation fault.
pub fn programs(cfg: &ExperimentConfig) -> ProgramsReport {
    let progs = WholeProgram::all();
    let width = 8;
    let scale = cfg.scale;
    let datapath = cfg.datapath;
    let rows = run_jobs(progs.len(), cfg.threads, |i| {
        let wp = progs[i];
        let program = wp.program(scale);
        let mut emu = Emulator::new(&program);
        emu.run(crate::differential::EMULATOR_STEP_BOUND)
            .unwrap_or_else(|e| panic!("{} did not halt: {e}", wp.name()));
        let expect = emu.arch_state();
        let checksum = expect.regs[redbin_workload::programs::CHECKSUM_REG as usize];
        assert_eq!(
            checksum,
            wp.expected_checksum(scale),
            "{}: checksum diverged from the Rust reference",
            wp.name()
        );
        let mut ipc = [0.0; 4];
        let mut stats = Vec::with_capacity(4);
        for (m, model) in CoreModel::all().iter().enumerate() {
            let config = MachineConfig::new(*model, width).with_datapath(datapath);
            let (s, arch) = Simulator::new(config, &program)
                .run_with_arch()
                .unwrap_or_else(|e| panic!("{} on {model} failed: {e}", wp.name()));
            if let Some(d) = expect.diff(&arch) {
                panic!("{} on {model}: architectural divergence: {d}", wp.name());
            }
            ipc[m] = s.ipc();
            stats.push(s);
        }
        ProgramRow {
            program: wp,
            checksum,
            emulated: expect.retired,
            ipc,
            stats,
        }
    });
    ProgramsReport { width, rows }
}

/// The data behind Figure 13: bypass-case distribution on the 8-wide
/// RB-full machine over SPECint2000.
#[derive(Debug, Clone)]
pub struct Figure13 {
    /// Per-benchmark accounting of last-arriving bypassed operands.
    pub rows: Vec<(Benchmark, BypassCases, f64)>,
}

/// Runs Figure 13: which bypass cases are potentially critical.
pub fn figure13(cfg: &ExperimentConfig) -> Figure13 {
    let benches = Suite::Spec2000.benchmarks();
    let rows = run_jobs(benches.len(), cfg.threads, |i| {
        let b = benches[i];
        let stats = run_one(CoreModel::RbFull, 8, b, cfg);
        (b, stats.bypass_cases, stats.bypassed_inst_fraction())
    });
    Figure13 { rows }
}

/// One limited-bypass configuration's harmonic-mean IPC at both widths
/// (Figure 14).
#[derive(Debug, Clone, PartialEq)]
pub struct Figure14Row {
    /// The paper's configuration name (`Full`, `No-1`, …).
    pub label: String,
    /// The bypass levels present.
    pub levels: BypassLevels,
    /// Harmonic-mean IPC over all 20 benchmarks, 4-wide.
    pub hmean_w4: f64,
    /// Harmonic-mean IPC over all 20 benchmarks, 8-wide.
    pub hmean_w8: f64,
}

/// The data behind Figure 14.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure14 {
    /// One row per bypass configuration.
    pub rows: Vec<Figure14Row>,
}

/// The bypass configurations Figure 14 evaluates.
pub fn figure14_configs() -> Vec<BypassLevels> {
    vec![
        BypassLevels::FULL,
        BypassLevels::without(&[1]),
        BypassLevels::without(&[2]),
        BypassLevels::without(&[3]),
        BypassLevels::without(&[1, 2]),
        BypassLevels::without(&[2, 3]),
    ]
}

/// Runs Figure 14: the Ideal machine under limited bypass networks,
/// harmonic mean over all twenty benchmarks at both widths.
pub fn figure14(cfg: &ExperimentConfig) -> Figure14 {
    let configs = figure14_configs();
    let benches = Benchmark::all();
    // Jobs: config × width × benchmark.
    let widths = [4usize, 8];
    let n = configs.len() * widths.len() * benches.len();
    let ipcs = run_jobs(n, cfg.threads, |j| {
        let c = j / (widths.len() * benches.len());
        let rest = j % (widths.len() * benches.len());
        let w = rest / benches.len();
        let b = rest % benches.len();
        let config = MachineConfig::ideal(widths[w])
            .with_bypass(configs[c])
            .with_datapath(cfg.datapath);
        let program = benches[b].program(cfg.scale);
        Simulator::new(config, &program)
            .run()
            .unwrap_or_else(|e| panic!("figure14 job failed: {e}"))
            .ipc()
    });
    let rows = configs
        .iter()
        .enumerate()
        .map(|(c, levels)| {
            let mut per_width = [0.0f64; 2];
            for (w, slot) in per_width.iter_mut().enumerate() {
                let base = c * widths.len() * benches.len() + w * benches.len();
                let v: Vec<f64> = (0..benches.len()).map(|b| ipcs[base + b]).collect();
                *slot = harmonic_mean(&v);
            }
            Figure14Row {
                label: levels.label(),
                levels: *levels,
                hmean_w4: per_width[0],
                hmean_w8: per_width[1],
            }
        })
        .collect();
    Figure14 { rows }
}

/// Measures Table 1's dynamic-fraction column over the whole 20-benchmark
/// suite using the functional emulator (no timing needed).
///
/// Returns the merged histogram and the per-benchmark breakdown.
pub fn table1(cfg: &ExperimentConfig) -> (Table1Counts, Vec<(Benchmark, Table1Counts)>) {
    let benches = Benchmark::all();
    let per = run_jobs(benches.len(), cfg.threads, |i| {
        let b = benches[i];
        let program = b.program(cfg.scale);
        let mut emu = Emulator::new(&program);
        let mut counts = Table1Counts::new();
        while let Ok(r) = emu.step() {
            if r.inst.op == Opcode::Halt {
                break;
            }
            counts.record(r.inst.op);
            if emu.is_halted() {
                break;
            }
        }
        (b, counts)
    });
    let mut merged = Table1Counts::new();
    for (_, c) in &per {
        merged.merge(c);
    }
    (merged, per)
}

/// One row of Table 3: the latency of an instruction class on each machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table3Row {
    /// The instruction class.
    pub class: LatencyClass,
    /// Baseline latency.
    pub base: u64,
    /// RB machine latency to the primary result.
    pub rb: u64,
    /// RB machine latency to the 2's-complement result, when it differs.
    pub rb_tc: Option<u64>,
    /// Ideal machine latency.
    pub ideal: u64,
}

/// Reconstructs Table 3 from the machine configurations (a consistency
/// check that the code encodes what the paper states).
pub fn table3() -> Vec<Table3Row> {
    let base = MachineConfig::baseline(8);
    let rb = MachineConfig::rb_full(8);
    let ideal = MachineConfig::ideal(8);
    let representative = |class: LatencyClass| -> Opcode {
        match class {
            LatencyClass::IntArith => Opcode::Addq,
            LatencyClass::IntLogical => Opcode::And,
            LatencyClass::ShiftLeft => Opcode::Sll,
            LatencyClass::ShiftRight => Opcode::Srl,
            LatencyClass::IntCompare => Opcode::Cmplt,
            LatencyClass::ByteManip => Opcode::Extbl,
            LatencyClass::IntMul => Opcode::Mulq,
            LatencyClass::FpArith => Opcode::Fadd,
            LatencyClass::FpDiv => Opcode::Fdiv,
            LatencyClass::Mem => Opcode::Ldq,
            LatencyClass::Branch => Opcode::Beq,
        }
    };
    LatencyClass::all()
        .iter()
        .map(|&class| {
            let op = representative(class);
            let rb_lat = rb.exec_latency(op);
            let rb_tc = rb
                .result_is_rb(op)
                .then_some(rb_lat + rb.conversion_latency);
            Table3Row {
                class,
                base: base.exec_latency(op),
                rb: rb_lat,
                rb_tc,
                ideal: ideal.exec_latency(op),
            }
        })
        .collect()
}

/// The §3.4 delay comparison (critical paths of the gate-level adders).
pub fn delay_report() -> redbin_gates::report::DelayReport {
    redbin_gates::report::DelayReport::standard()
}

/// Ablation: sweep the redundant→TC conversion latency on the 8-wide
/// RB-full machine; returns `(conversion_cycles, harmonic-mean IPC over all
/// benchmarks)`.
pub fn conversion_sweep(cfg: &ExperimentConfig, latencies: &[u64]) -> Vec<(u64, f64)> {
    let benches = Benchmark::all();
    latencies
        .iter()
        .map(|&conv| {
            let ipcs = run_jobs(benches.len(), cfg.threads, |i| {
                let mut config = MachineConfig::rb_full(8).with_datapath(cfg.datapath);
                config.conversion_latency = conv;
                let program = benches[i].program(cfg.scale);
                Simulator::new(config, &program)
                    .run()
                    .expect("sweep run")
                    .ipc()
            });
            (conv, harmonic_mean(&ipcs))
        })
        .collect()
}

/// Ablation: sweep the inter-cluster forwarding delay on the 8-wide Ideal
/// machine; returns `(delay_cycles, harmonic-mean IPC)`.
pub fn cluster_sweep(cfg: &ExperimentConfig, delays: &[u64]) -> Vec<(u64, f64)> {
    let benches = Benchmark::all();
    delays
        .iter()
        .map(|&d| {
            let ipcs = run_jobs(benches.len(), cfg.threads, |i| {
                let mut config = MachineConfig::ideal(8).with_datapath(cfg.datapath);
                config.cluster_delay = d;
                let program = benches[i].program(cfg.scale);
                Simulator::new(config, &program)
                    .run()
                    .expect("sweep run")
                    .ipc()
            });
            (d, harmonic_mean(&ipcs))
        })
        .collect()
}

/// Extension (the paper's §4.2 future work): compare steering policies on
/// the limited-bypass RB machine, where keeping consumers next to their
/// producers matters most. Returns `(policy name, width, harmonic-mean
/// IPC)` rows.
pub fn steering_comparison(cfg: &ExperimentConfig) -> Vec<(&'static str, usize, f64)> {
    let benches = Benchmark::all();
    let mut out = Vec::new();
    for (name, policy) in [
        ("round-robin pairs", SteeringPolicy::RoundRobinPairs),
        ("dependence-aware", SteeringPolicy::DependenceAware),
    ] {
        for width in [4usize, 8] {
            let ipcs = run_jobs(benches.len(), cfg.threads, |i| {
                let config = MachineConfig::rb_limited(width)
                    .with_steering(policy)
                    .with_datapath(cfg.datapath);
                let program = benches[i].program(cfg.scale);
                Simulator::new(config, &program)
                    .run()
                    .expect("steering run")
                    .ipc()
            });
            out.push((name, width, harmonic_mean(&ipcs)));
        }
    }
    out
}

/// Ablation: sweep the instruction-window size on the 8-wide Ideal machine.
pub fn window_sweep(cfg: &ExperimentConfig, windows: &[usize]) -> Vec<(usize, f64)> {
    let benches = Benchmark::all();
    windows
        .iter()
        .map(|&w| {
            let ipcs = run_jobs(benches.len(), cfg.threads, |i| {
                let mut config = MachineConfig::ideal(8).with_datapath(cfg.datapath);
                config.window = w;
                let program = benches[i].program(cfg.scale);
                Simulator::new(config, &program)
                    .run()
                    .expect("sweep run")
                    .ipc()
            });
            (w, harmonic_mean(&ipcs))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_shapes() {
        let cfg = ExperimentConfig::quick();
        let fig = figure_ipc(8, Suite::Spec95, &cfg);
        assert_eq!(fig.rows.len(), 8);
        let hm = fig.harmonic_means();
        // Ordering: Baseline ≤ RB-full ≤ Ideal (aggregate).
        assert!(hm[0] <= hm[2] * 1.001, "baseline {0} vs rb-full {1}", hm[0], hm[2]);
        assert!(hm[2] <= hm[3] * 1.001, "rb-full {0} vs ideal {1}", hm[2], hm[3]);
    }

    #[test]
    fn table3_matches_paper() {
        let rows = table3();
        let find = |c: LatencyClass| rows.iter().find(|r| r.class == c).unwrap().clone();
        let arith = find(LatencyClass::IntArith);
        assert_eq!((arith.base, arith.rb, arith.rb_tc, arith.ideal), (2, 1, Some(3), 1));
        let shl = find(LatencyClass::ShiftLeft);
        assert_eq!((shl.base, shl.rb, shl.rb_tc, shl.ideal), (3, 3, Some(5), 3));
        let logic = find(LatencyClass::IntLogical);
        assert_eq!((logic.base, logic.rb, logic.rb_tc, logic.ideal), (1, 1, None, 1));
        let mul = find(LatencyClass::IntMul);
        assert_eq!((mul.base, mul.rb, mul.rb_tc, mul.ideal), (10, 10, None, 10));
        let fdiv = find(LatencyClass::FpDiv);
        assert_eq!((fdiv.base, fdiv.rb, fdiv.ideal), (32, 32, 32));
    }

    #[test]
    fn whole_program_suite_is_self_verifying() {
        // `programs` panics on any checksum or architectural divergence,
        // so a clean return at test scale is itself the verification.
        let rep = programs(&ExperimentConfig::quick());
        assert_eq!(rep.rows.len(), 5);
        for r in &rep.rows {
            assert_eq!(r.stats.len(), 4, "{:?}", r.program);
            assert!(r.ipc.iter().all(|&v| v > 0.0), "{:?}: zero IPC", r.program);
            assert!(r.emulated > 1_000, "{:?}: trivial run", r.program);
        }
        assert!(rep.harmonic_means().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn table1_counts_cover_the_suite() {
        let cfg = ExperimentConfig::quick();
        let (merged, per) = table1(&cfg);
        assert_eq!(per.len(), 20);
        assert!(merged.total() > 50_000, "total {}", merged.total());
        use redbin_isa::format::Table1Row;
        // Memory traffic and arithmetic must both be substantial.
        assert!(merged.fraction(Table1Row::MemAccess) > 10.0);
        assert!(merged.fraction(Table1Row::ArithRbRb) > 10.0);
        assert!(merged.fraction(Table1Row::CondBranch) > 5.0);
    }

    #[test]
    fn canonical_hash_separates_scales_but_not_threads() {
        let quick = ExperimentConfig::quick();
        let mut more_threads = quick;
        more_threads.threads = quick.threads + 7;
        assert_eq!(quick.canonical_hash(), more_threads.canonical_hash());
        let mut full = quick;
        full.scale = Scale::Full;
        assert_ne!(quick.canonical_hash(), full.canonical_hash());
        let mut faithful = quick;
        faithful.datapath = DatapathMode::Faithful;
        assert_ne!(quick.canonical_hash(), faithful.canonical_hash());
    }
}
