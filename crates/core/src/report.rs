//! Plain-text rendering of experiment results — the same rows/series the
//! paper's tables and figures report.

use std::fmt::Write as _;

use redbin_isa::format::{Table1Counts, Table1Row};
use redbin_sim::stats::BypassCase;
use redbin_sim::CoreModel;
use redbin_workload::Benchmark;

use crate::experiments::{Figure13, Figure14, IpcFigure, ProgramsReport, Table3Row};

/// Renders a Figure 9–12 style table: one row per benchmark, one column per
/// machine, harmonic means at the bottom, plus the paper's headline ratios.
pub fn render_ipc_figure(fig: &IpcFigure, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{}-wide machines, {}", fig.width, fig.suite);
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>11} {:>9} {:>8}",
        "benchmark", "Baseline", "RB-limited", "RB-full", "Ideal"
    );
    for row in &fig.rows {
        let _ = writeln!(
            out,
            "{:>10} {:>10.3} {:>11.3} {:>9.3} {:>8.3}",
            row.benchmark.name(),
            row.ipc[0],
            row.ipc[1],
            row.ipc[2],
            row.ipc[3]
        );
    }
    let hm = fig.harmonic_means();
    let _ = writeln!(
        out,
        "{:>10} {:>10.3} {:>11.3} {:>9.3} {:>8.3}",
        "h-mean", hm[0], hm[1], hm[2], hm[3]
    );
    let (gain, vs_ideal, lim_cost) = fig.headline_ratios();
    let _ = writeln!(
        out,
        "RB-full vs Baseline: {:+.1}%   RB-full vs Ideal: -{:.1}%   RB-limited vs RB-full: -{:.1}%",
        gain * 100.0,
        vs_ideal * 100.0,
        lim_cost * 100.0
    );
    out
}

/// Renders the whole-program suite: one row per program, one IPC column
/// per machine, with the emulator-verified checksum alongside.
pub fn render_programs(rep: &ProgramsReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Whole-program suite (emulator-verified).");
    let _ = writeln!(out, "{}-wide machines", rep.width);
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>11} {:>9} {:>8}  {:>16}",
        "program", "Baseline", "RB-limited", "RB-full", "Ideal", "checksum"
    );
    for row in &rep.rows {
        let _ = writeln!(
            out,
            "{:>10} {:>10.3} {:>11.3} {:>9.3} {:>8.3}  {:016x}",
            row.program.name(),
            row.ipc[0],
            row.ipc[1],
            row.ipc[2],
            row.ipc[3],
            row.checksum
        );
    }
    let hm = rep.harmonic_means();
    let _ = writeln!(
        out,
        "{:>10} {:>10.3} {:>11.3} {:>9.3} {:>8.3}",
        "h-mean", hm[0], hm[1], hm[2], hm[3]
    );
    out
}

/// Renders Figure 13: the bypass-case distribution per benchmark.
pub fn render_figure13(fig: &Figure13) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 13. Potentially critical bypass cases");
    let _ = writeln!(out, "(8-wide RB-full machine, SPECint2000 proxies)");
    let _ = writeln!(
        out,
        "{:>10} {:>8} {:>7} {:>7} {:>7} {:>8}",
        "benchmark", "w/byp", "TC→TC", "TC→RB", "RB→RB", "RB→TC"
    );
    for (b, cases, frac) in &fig.rows {
        let _ = writeln!(
            out,
            "{:>10} {:>7.0}% {:>6.1}% {:>6.1}% {:>6.1}% {:>7.1}%",
            b.name(),
            frac * 100.0,
            cases.fraction(BypassCase::TcToTc) * 100.0,
            cases.fraction(BypassCase::TcToRb) * 100.0,
            cases.fraction(BypassCase::RbToRb) * 100.0,
            cases.fraction(BypassCase::RbToTc) * 100.0,
        );
    }
    let _ = writeln!(
        out,
        "(w/byp = fraction of dynamic instructions with ≥1 bypassed source;"
    );
    let _ = writeln!(
        out,
        " the four columns classify each instruction's last-arriving bypassed operand;"
    );
    let _ = writeln!(out, " RB→TC is the only case requiring a format conversion.)");
    out
}

/// Renders Figure 14: harmonic-mean IPC under limited bypass networks.
pub fn render_figure14(fig: &Figure14) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 14. IPC with Limited Bypass Networks");
    let _ = writeln!(
        out,
        "(Ideal machine; harmonic mean over all 20 benchmarks)"
    );
    let _ = writeln!(out, "{:>8} {:>8} {:>8} {:>9} {:>9}", "config", "4-wide", "8-wide", "Δ4-wide", "Δ8-wide");
    let full = &fig.rows[0];
    for row in &fig.rows {
        let _ = writeln!(
            out,
            "{:>8} {:>8.3} {:>8.3} {:>8.1}% {:>8.1}%",
            row.label,
            row.hmean_w4,
            row.hmean_w8,
            (row.hmean_w4 / full.hmean_w4 - 1.0) * 100.0,
            (row.hmean_w8 / full.hmean_w8 - 1.0) * 100.0,
        );
    }
    out
}

/// Renders Table 1 with measured and paper fractions side by side.
pub fn render_table1(merged: &Table1Counts, per: &[(Benchmark, Table1Counts)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1. Instruction Classifications (dynamic %)");
    let _ = writeln!(
        out,
        "{:<46} {:>9} {:>8}",
        "class", "measured", "paper"
    );
    for &row in Table1Row::all() {
        let _ = writeln!(
            out,
            "{:<46} {:>8.1}% {:>7.1}%",
            row.label(),
            merged.fraction(row),
            row.paper_fraction()
        );
    }
    let _ = writeln!(out, "measured over {} dynamic instructions, {} proxies", merged.total(), per.len());
    out
}

/// Renders Table 3 (instruction class latencies per machine).
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3. Instruction Class Latencies");
    let _ = writeln!(
        out,
        "{:<28} {:>5} {:>15} {:>6}",
        "class", "Base", "RB (TC result)", "Ideal"
    );
    for r in rows {
        let rb = match r.rb_tc {
            Some(tc) => format!("{} ({tc})", r.rb),
            None => format!("{}", r.rb),
        };
        let _ = writeln!(out, "{:<28} {:>5} {:>15} {:>6}", r.class.name(), r.base, rb, r.ideal);
    }
    out
}

/// Exports a Figure 9–12 result as CSV (`benchmark,baseline,rb_limited,
/// rb_full,ideal`) for plotting tools.
pub fn ipc_figure_csv(fig: &IpcFigure) -> String {
    let mut out = String::from("benchmark,baseline,rb_limited,rb_full,ideal\n");
    for row in &fig.rows {
        let _ = writeln!(
            out,
            "{},{:.4},{:.4},{:.4},{:.4}",
            row.benchmark.name(),
            row.ipc[0],
            row.ipc[1],
            row.ipc[2],
            row.ipc[3]
        );
    }
    let hm = fig.harmonic_means();
    let _ = writeln!(out, "hmean,{:.4},{:.4},{:.4},{:.4}", hm[0], hm[1], hm[2], hm[3]);
    out
}

/// Exports a Figure 9–12 result as a GitHub-flavoured markdown table.
pub fn ipc_figure_markdown(fig: &IpcFigure) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| benchmark | Baseline | RB-limited | RB-full | Ideal |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for row in &fig.rows {
        let _ = writeln!(
            out,
            "| {} | {:.3} | {:.3} | {:.3} | {:.3} |",
            row.benchmark.name(),
            row.ipc[0],
            row.ipc[1],
            row.ipc[2],
            row.ipc[3]
        );
    }
    let hm = fig.harmonic_means();
    let _ = writeln!(
        out,
        "| **h-mean** | {:.3} | {:.3} | {:.3} | {:.3} |",
        hm[0], hm[1], hm[2], hm[3]
    );
    out
}

/// Renders a horizontal bar for quick visual comparison in terminals.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled.min(width) { '█' } else { '·' });
    }
    s
}

/// Renders an IPC figure as labelled bars (closer to the paper's plots).
pub fn render_ipc_bars(fig: &IpcFigure) -> String {
    let mut out = String::new();
    let max = fig
        .rows
        .iter()
        .flat_map(|r| r.ipc.iter().copied())
        .fold(0.0f64, f64::max);
    for row in &fig.rows {
        let _ = writeln!(out, "{}:", row.benchmark.name());
        for (m, model) in CoreModel::all().iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:>10} {} {:.3}",
                model.name(),
                bar(row.ipc[m], max, 40),
                row.ipc[m]
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{IpcRow, Table3Row};
    use redbin_isa::class::LatencyClass;
    use redbin_sim::stats::BypassCases;
    use redbin_sim::BypassLevels;
    use redbin_workload::Suite;

    fn sample_fig() -> IpcFigure {
        IpcFigure {
            width: 8,
            suite: Suite::Spec95,
            rows: vec![IpcRow {
                benchmark: Benchmark::Go,
                ipc: [1.0, 1.05, 1.08, 1.1],
                stats: Vec::new(),
            }],
        }
    }

    #[test]
    fn ipc_table_renders() {
        let s = render_ipc_figure(&sample_fig(), "Figure 10");
        assert!(s.contains("Figure 10"));
        assert!(s.contains("go"));
        assert!(s.contains("h-mean"));
        assert!(s.contains("RB-full vs Baseline"));
    }

    #[test]
    fn bars_render() {
        let b = bar(0.5, 1.0, 10);
        assert_eq!(b.chars().filter(|c| *c == '█').count(), 5);
        let s = render_ipc_bars(&sample_fig());
        assert!(s.contains("go:"));
        assert!(s.contains("Ideal"));
    }

    #[test]
    fn figure13_renders() {
        let fig = Figure13 {
            rows: vec![(Benchmark::Bzip2, BypassCases::default(), 0.69)],
        };
        let s = render_figure13(&fig);
        assert!(s.contains("bzip2"));
        assert!(s.contains("69%"));
    }

    #[test]
    fn figure14_renders() {
        let fig = crate::experiments::Figure14 {
            rows: vec![
                crate::experiments::Figure14Row {
                    label: "Full".into(),
                    levels: BypassLevels::FULL,
                    hmean_w4: 1.0,
                    hmean_w8: 1.2,
                },
                crate::experiments::Figure14Row {
                    label: "No-1".into(),
                    levels: BypassLevels::without(&[1]),
                    hmean_w4: 0.9,
                    hmean_w8: 1.05,
                },
            ],
        };
        let s = render_figure14(&fig);
        assert!(s.contains("No-1"));
        assert!(s.contains("-10.0%"));
    }

    #[test]
    fn table3_renders() {
        let rows = vec![Table3Row {
            class: LatencyClass::IntArith,
            base: 2,
            rb: 1,
            rb_tc: Some(3),
            ideal: 1,
        }];
        let s = render_table3(&rows);
        assert!(s.contains("integer arithmetic"));
        assert!(s.contains("1 (3)"));
    }

    #[test]
    fn csv_and_markdown_exports() {
        let fig = sample_fig();
        let csv = ipc_figure_csv(&fig);
        assert!(csv.starts_with("benchmark,baseline"));
        assert!(csv.contains("go,1.0000,1.0500,1.0800,1.1000"));
        assert!(csv.contains("hmean,"));
        let md = ipc_figure_markdown(&fig);
        assert!(md.contains("| go | 1.000 |"));
        assert!(md.contains("**h-mean**"));
    }

    #[test]
    fn table1_renders() {
        let mut counts = Table1Counts::new();
        counts.record(redbin_isa::Opcode::Addq);
        let s = render_table1(&counts, &[]);
        assert!(s.contains("Memory Access"));
        assert!(s.contains("paper"));
    }
}
