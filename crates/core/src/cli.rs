//! Small CLI parsing helpers shared by the workspace binaries.
//!
//! Every binary in the workspace parses its arguments strictly (unknown
//! flags are errors, per the PR-2 convention); the value parsers they
//! share live here so `redbin-repro fuzz --start-seed 0x2a` and
//! `redbin-analyze programs --start-seed 0x2a` accept exactly the same
//! spellings.

/// Parses a non-negative integer flag value (decimal, or hex with `0x`).
///
/// # Errors
///
/// Returns a usage-style message naming the flag and the offending value.
pub fn parse_u64(flag: &str, value: &str) -> Result<u64, String> {
    let parsed = match value.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => value.parse(),
    };
    parsed.map_err(|_| format!("{flag}: `{value}` is not a non-negative integer"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_and_hex_parse() {
        assert_eq!(parse_u64("--seeds", "42"), Ok(42));
        assert_eq!(parse_u64("--seeds", "0x2a"), Ok(42));
        assert_eq!(parse_u64("--seeds", "0"), Ok(0));
        assert_eq!(parse_u64("--seeds", "0xffffffffffffffff"), Ok(u64::MAX));
    }

    #[test]
    fn junk_is_rejected_with_the_flag_name() {
        for bad in ["", "-1", "0x", "12a", "0xzz", "1.5"] {
            let err = parse_u64("--start-seed", bad).unwrap_err();
            assert!(err.contains("--start-seed"), "{err}");
            assert!(err.contains(bad) || bad.is_empty(), "{err}");
        }
    }
}
