//! Request/response envelopes for the `redbin-served` batch service.
//!
//! The protocol is newline-delimited JSON over TCP: each request and each
//! response is one [`Json`] document rendered with [`Json::to_compact`]
//! (single line) followed by `\n`. Every envelope carries the protocol
//! version under `"v"`; unknown versions and malformed envelopes are
//! rejected, never guessed at. See `SERVING.md` for the full protocol.
//!
//! The module also defines [`JobSpec`] — the unit of work a server
//! executes — and its **content-addressed identity**: [`JobSpec::canonical_key`]
//! folds the fully-resolved [`ExperimentConfig`], every [`MachineConfig`]
//! the experiment instantiates, and the workload scale through the
//! canonical FNV hasher ([`redbin_sim::hash::Fnv64`]). Two submissions
//! with equal keys are the same computation, so the server can serve the
//! second from cache byte-identically.

use redbin_sim::hash::Fnv64;
use redbin_sim::{BypassLevels, CoreModel, DatapathMode, MachineConfig, SteeringPolicy};
use redbin_workload::{Benchmark, Scale, Suite};

use crate::experiments::{self, ExperimentConfig};
use crate::json::{self, Json};

/// Version of the wire protocol this module speaks.
///
/// History: v1 — submit/poll/fetch/stats/shutdown; v2 — adds the
/// `METRICS` command (text exposition dump of the server's
/// [`MetricsRegistry`](redbin_telemetry::MetricsRegistry)).
pub const WIRE_VERSION: u64 = 2;

/// An error raised while decoding an envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn wire_err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

/// The canonical lowercase name of a scale on the wire.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// Parses a bypass-level configuration from its paper label (`"Full"`,
/// `"No-2"`, `"No-1,2"`, …) — the inverse of [`BypassLevels::label`].
///
/// # Errors
///
/// Returns a [`WireError`] on anything that is not a label
/// [`BypassLevels::label`] can produce.
pub fn bypass_from_label(label: &str) -> Result<BypassLevels, WireError> {
    if label == "Full" {
        return Ok(BypassLevels::FULL);
    }
    let Some(rest) = label.strip_prefix("No-") else {
        return Err(wire_err(format!(
            "unknown bypass label `{label}` (expected Full or No-<levels>)"
        )));
    };
    let mut removed = Vec::new();
    for part in rest.split(',') {
        match part {
            "1" => removed.push(1u8),
            "2" => removed.push(2),
            "3" => removed.push(3),
            other => {
                return Err(wire_err(format!(
                    "bad bypass level `{other}` in `{label}` (expected 1, 2 or 3)"
                )))
            }
        }
    }
    Ok(BypassLevels::without(&removed))
}

/// The canonical lowercase name of a core model on the wire (`"baseline"`,
/// `"rb-limited"`, `"rb-full"`, `"ideal"`).
pub fn model_name(model: CoreModel) -> &'static str {
    match model {
        CoreModel::Baseline => "baseline",
        CoreModel::RbLimited => "rb-limited",
        CoreModel::RbFull => "rb-full",
        CoreModel::Ideal => "ideal",
    }
}

/// Parses a wire core-model name.
///
/// # Errors
///
/// Returns a [`WireError`] naming the accepted values on anything else.
pub fn model_from_name(name: &str) -> Result<CoreModel, WireError> {
    CoreModel::all()
        .iter()
        .copied()
        .find(|&m| model_name(m) == name)
        .ok_or_else(|| {
            wire_err(format!(
                "unknown model `{name}` (expected baseline|rb-limited|rb-full|ideal)"
            ))
        })
}

/// The canonical name of a steering policy on the wire.
pub fn steering_name(policy: SteeringPolicy) -> &'static str {
    match policy {
        SteeringPolicy::RoundRobinPairs => "round-robin",
        SteeringPolicy::DependenceAware => "dependence-aware",
    }
}

/// Parses a wire steering-policy name.
///
/// # Errors
///
/// Returns a [`WireError`] naming the accepted values on anything else.
pub fn steering_from_name(name: &str) -> Result<SteeringPolicy, WireError> {
    match name {
        "round-robin" => Ok(SteeringPolicy::RoundRobinPairs),
        "dependence-aware" => Ok(SteeringPolicy::DependenceAware),
        other => Err(wire_err(format!(
            "unknown steering `{other}` (expected round-robin|dependence-aware)"
        ))),
    }
}

/// Parses a wire scale name.
///
/// # Errors
///
/// Returns a [`WireError`] naming the accepted values on anything else.
pub fn scale_from_name(name: &str) -> Result<Scale, WireError> {
    match name {
        "test" => Ok(Scale::Test),
        "small" => Ok(Scale::Small),
        "full" => Ok(Scale::Full),
        other => Err(wire_err(format!(
            "unknown scale `{other}` (expected test|small|full)"
        ))),
    }
}

/// The experiments a server can run as batch jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentKind {
    /// Figure 9: 8-wide, SPECint2000.
    Figure9,
    /// Figure 10: 8-wide, SPECint95.
    Figure10,
    /// Figure 11: 4-wide, SPECint2000.
    Figure11,
    /// Figure 12: 4-wide, SPECint95.
    Figure12,
    /// Figure 13: bypass-case distribution.
    Figure13,
    /// Figure 14: limited-bypass sweep.
    Figure14,
    /// Table 1: dynamic instruction mix.
    Table1,
    /// Table 3: latency table consistency check.
    Table3,
    /// §3.4 gate-level delay report.
    Delays,
    /// The whole-program suite (quicksort, matmul, box blur, sieve,
    /// QOI-style decoder) on the four 8-wide machines, emulator-verified.
    Programs,
    /// A synthetic job that sleeps: used for load, deadline and shutdown
    /// testing without burning CPU (see `SERVING.md`).
    Sleep,
    /// One design-space point: a single machine configuration
    /// ([`PointSpec`]) run over a benchmark suite, reporting per-benchmark
    /// and harmonic-mean IPC. This is the unit of work behind
    /// `redbin-explore`'s grid sweeps (see `EXPLORATION.md`); its
    /// content-addressed id makes re-running a grid incremental.
    Point,
    /// A client-submitted assembly program, run on the four 8-wide
    /// machines. The server assembles the source and runs the
    /// `redbin-analyze` program verifier **before queueing**: anything it
    /// cannot prove memory-safe and terminating is rejected with a
    /// structured error (see `SERVING.md`).
    Custom,
}

impl ExperimentKind {
    /// Every kind, in wire-name order.
    pub fn all() -> &'static [ExperimentKind] {
        &[
            ExperimentKind::Figure9,
            ExperimentKind::Figure10,
            ExperimentKind::Figure11,
            ExperimentKind::Figure12,
            ExperimentKind::Figure13,
            ExperimentKind::Figure14,
            ExperimentKind::Table1,
            ExperimentKind::Table3,
            ExperimentKind::Delays,
            ExperimentKind::Programs,
            ExperimentKind::Sleep,
            ExperimentKind::Point,
            ExperimentKind::Custom,
        ]
    }

    /// The wire name (`"figure9"`, `"table1"`, …).
    pub fn name(self) -> &'static str {
        match self {
            ExperimentKind::Figure9 => "figure9",
            ExperimentKind::Figure10 => "figure10",
            ExperimentKind::Figure11 => "figure11",
            ExperimentKind::Figure12 => "figure12",
            ExperimentKind::Figure13 => "figure13",
            ExperimentKind::Figure14 => "figure14",
            ExperimentKind::Table1 => "table1",
            ExperimentKind::Table3 => "table3",
            ExperimentKind::Delays => "delays",
            ExperimentKind::Programs => "programs",
            ExperimentKind::Sleep => "sleep",
            ExperimentKind::Point => "point",
            ExperimentKind::Custom => "custom",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for names no server understands.
    pub fn from_name(name: &str) -> Result<Self, WireError> {
        Self::all()
            .iter()
            .copied()
            .find(|k| k.name() == name)
            .ok_or_else(|| wire_err(format!("unknown experiment `{name}`")))
    }

    /// The canonical one-byte tag folded into the cache key.
    fn canonical_tag(self) -> u8 {
        match self {
            ExperimentKind::Figure9 => 9,
            ExperimentKind::Figure10 => 10,
            ExperimentKind::Figure11 => 11,
            ExperimentKind::Figure12 => 12,
            ExperimentKind::Figure13 => 13,
            ExperimentKind::Figure14 => 14,
            ExperimentKind::Table1 => 1,
            ExperimentKind::Table3 => 3,
            ExperimentKind::Delays => 34,
            ExperimentKind::Programs => 20,
            ExperimentKind::Sleep => 200,
            ExperimentKind::Point => 21,
            ExperimentKind::Custom => 22,
        }
    }
}

/// The benchmark set a [`ExperimentKind::Point`] job simulates.
///
/// `Quick` is a fixed four-benchmark subset (two per SPEC generation,
/// chosen for diverse behavior) that keeps large grid sweeps tractable;
/// the full suites are available when the extra fidelity is worth the
/// wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PointSuite {
    /// go + li (SPECint95), gzip + mcf (SPECint2000).
    Quick,
    /// The eight SPECint95 proxies.
    Spec95,
    /// The twelve SPECint2000 proxies.
    Spec2000,
    /// All twenty benchmarks.
    All,
}

impl PointSuite {
    /// Every suite, in wire-name order.
    pub fn all() -> &'static [PointSuite] {
        &[
            PointSuite::Quick,
            PointSuite::Spec95,
            PointSuite::Spec2000,
            PointSuite::All,
        ]
    }

    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            PointSuite::Quick => "quick",
            PointSuite::Spec95 => "spec95",
            PointSuite::Spec2000 => "spec2000",
            PointSuite::All => "all",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] naming the accepted values on anything else.
    pub fn from_name(name: &str) -> Result<Self, WireError> {
        Self::all()
            .iter()
            .copied()
            .find(|s| s.name() == name)
            .ok_or_else(|| {
                wire_err(format!(
                    "unknown point suite `{name}` (expected quick|spec95|spec2000|all)"
                ))
            })
    }

    /// The canonical one-byte tag folded into the cache key.
    fn canonical_tag(self) -> u8 {
        match self {
            PointSuite::Quick => 0,
            PointSuite::Spec95 => 1,
            PointSuite::Spec2000 => 2,
            PointSuite::All => 3,
        }
    }

    /// The benchmarks in this set, in reporting order.
    pub fn benchmarks(self) -> Vec<Benchmark> {
        match self {
            PointSuite::Quick => vec![
                Benchmark::Go,
                Benchmark::Li,
                Benchmark::Gzip,
                Benchmark::Mcf,
            ],
            PointSuite::Spec95 => Suite::Spec95.benchmarks().to_vec(),
            PointSuite::Spec2000 => Suite::Spec2000.benchmarks().to_vec(),
            PointSuite::All => Benchmark::all(),
        }
    }
}

/// The machine half of a [`ExperimentKind::Point`] job: which single
/// configuration to simulate. Bypass ablations and the `rb_rf_only`
/// escape hatch ride on the enclosing [`JobSpec`]'s post-v1 override
/// fields, so a point job composes with the same knobs every other
/// experiment understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointSpec {
    /// The §5.1 core model.
    pub model: CoreModel,
    /// Machine width (4 or 8; validated at decode time).
    pub width: usize,
    /// Scheduler steering policy.
    pub steering: SteeringPolicy,
    /// Which benchmarks to run.
    pub suite: PointSuite,
}

impl PointSpec {
    /// Serializes for the `point` key of a job envelope.
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.set("model", Json::Str(model_name(self.model).to_string()));
        o.set("width", Json::UInt(self.width as u64));
        o.set("steering", Json::Str(steering_name(self.steering).to_string()));
        o.set("suite", Json::Str(self.suite.name().to_string()));
        o
    }

    /// Decodes the `point` key of a job envelope.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on missing fields, unknown names, or a
    /// width the paper does not study (anything but 4 or 8).
    pub fn from_json(v: &Json) -> Result<Self, WireError> {
        let model = model_from_name(
            v.get("model")
                .and_then(Json::as_str)
                .ok_or_else(|| wire_err("point spec missing `model`"))?,
        )?;
        let width = v
            .get("width")
            .and_then(Json::as_u64)
            .ok_or_else(|| wire_err("point spec missing `width`"))? as usize;
        if width != 4 && width != 8 {
            return Err(wire_err(format!(
                "unsupported point width {width} (the paper studies 4- and 8-wide)"
            )));
        }
        let steering = match v.get("steering").and_then(Json::as_str) {
            Some(s) => steering_from_name(s)?,
            None => SteeringPolicy::RoundRobinPairs,
        };
        let suite = match v.get("suite").and_then(Json::as_str) {
            Some(s) => PointSuite::from_name(s)?,
            None => PointSuite::Quick,
        };
        Ok(PointSpec { model, width, steering, suite })
    }
}

/// One unit of server work: an experiment at a scale/datapath, or a
/// synthetic sleep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// What to run.
    pub kind: ExperimentKind,
    /// Workload scale (ignored by `Delays`, `Table3` and `Sleep`, but
    /// still part of the identity so clients see consistent semantics).
    pub scale: Scale,
    /// Datapath fidelity mode.
    pub datapath: DatapathMode,
    /// Milliseconds to sleep — only meaningful for [`ExperimentKind::Sleep`].
    pub sleep_ms: u64,
    /// Optional override of the bypass-level network, applied to every
    /// machine the experiment instantiates (`None` keeps each experiment's
    /// own levels). Carried on the wire as the paper label (`"No-2,3"`).
    pub bypass: Option<BypassLevels>,
    /// Drop the TC write-back path on RB machines
    /// (see `MachineConfig::rb_rf_only`). Combined with a missing BYP-3
    /// this produces a statically unsound machine, which the server's
    /// submit-time analysis rejects before queueing.
    pub rb_rf_only: bool,
    /// The machine of a [`ExperimentKind::Point`] job — required for
    /// `point`, meaningless (and rejected on decode) for every other kind.
    pub point: Option<PointSpec>,
    /// The assembly source of a [`ExperimentKind::Custom`] job — required
    /// for `custom`, rejected on decode for every other kind.
    pub custom: Option<String>,
}

impl JobSpec {
    /// A job for `kind` at `scale` with the fast datapath.
    pub fn new(kind: ExperimentKind, scale: Scale) -> Self {
        JobSpec {
            kind,
            scale,
            datapath: DatapathMode::Fast,
            sleep_ms: 0,
            bypass: None,
            rb_rf_only: false,
            point: None,
            custom: None,
        }
    }

    /// A synthetic sleep job.
    pub fn sleep(millis: u64) -> Self {
        JobSpec {
            kind: ExperimentKind::Sleep,
            scale: Scale::Test,
            datapath: DatapathMode::Fast,
            sleep_ms: millis,
            bypass: None,
            rb_rf_only: false,
            point: None,
            custom: None,
        }
    }

    /// A design-space point job (see [`PointSpec`]).
    pub fn point(spec: PointSpec, scale: Scale) -> Self {
        JobSpec {
            kind: ExperimentKind::Point,
            scale,
            datapath: DatapathMode::Fast,
            sleep_ms: 0,
            bypass: None,
            rb_rf_only: false,
            point: Some(spec),
            custom: None,
        }
    }

    /// A custom-program job: `source` is assembly text for the
    /// [`text`](redbin_workload::text) assembler.
    pub fn custom_program(source: impl Into<String>, scale: Scale) -> Self {
        JobSpec {
            kind: ExperimentKind::Custom,
            scale,
            datapath: DatapathMode::Fast,
            sleep_ms: 0,
            bypass: None,
            rb_rf_only: false,
            point: None,
            custom: Some(source.into()),
        }
    }

    /// Builder: override the bypass levels on every instantiated machine.
    #[must_use]
    pub fn with_bypass(mut self, levels: BypassLevels) -> Self {
        self.bypass = Some(levels);
        self
    }

    /// Builder: request the RB-register-file-only machine layout.
    #[must_use]
    pub fn with_rb_rf_only(mut self) -> Self {
        self.rb_rf_only = true;
        self
    }

    /// The [`ExperimentConfig`] this job resolves to on a server running
    /// `threads` workers per job.
    pub fn experiment_config(&self, threads: usize) -> ExperimentConfig {
        ExperimentConfig {
            scale: self.scale,
            threads,
            datapath: self.datapath,
        }
    }

    /// Every machine configuration the experiment instantiates — the
    /// machine half of the content address.
    pub fn machine_configs(&self) -> Vec<MachineConfig> {
        let four_models = |width: usize| -> Vec<MachineConfig> {
            redbin_sim::CoreModel::all()
                .iter()
                .map(|&m| MachineConfig::new(m, width).with_datapath(self.datapath))
                .collect()
        };
        let mut out = match self.kind {
            ExperimentKind::Figure9
            | ExperimentKind::Figure10
            | ExperimentKind::Programs
            | ExperimentKind::Custom => four_models(8),
            ExperimentKind::Figure11 | ExperimentKind::Figure12 => four_models(4),
            ExperimentKind::Figure13 => {
                vec![MachineConfig::rb_full(8).with_datapath(self.datapath)]
            }
            ExperimentKind::Figure14 => {
                let mut out = Vec::new();
                for levels in experiments::figure14_configs() {
                    for width in [4usize, 8] {
                        out.push(
                            MachineConfig::ideal(width)
                                .with_bypass(levels)
                                .with_datapath(self.datapath),
                        );
                    }
                }
                out
            }
            ExperimentKind::Table3 => vec![
                MachineConfig::baseline(8),
                MachineConfig::rb_full(8),
                MachineConfig::ideal(8),
            ],
            // One machine, described by the point spec. The builder is the
            // non-panicking construction path; a width it rejects (only
            // possible by bypassing `PointSpec::from_json`) yields an empty
            // machine list, which `run` reports as a structured error.
            ExperimentKind::Point => self
                .point
                .and_then(|p| {
                    MachineConfig::builder(p.model, p.width)
                        .steering(p.steering)
                        .datapath(self.datapath)
                        .build()
                        .ok()
                })
                .into_iter()
                .collect(),
            // Emulator-only / gate-level / synthetic: no timing machine.
            ExperimentKind::Table1 | ExperimentKind::Delays | ExperimentKind::Sleep => Vec::new(),
        };
        if let Some(levels) = self.bypass {
            for m in &mut out {
                m.bypass = levels;
            }
        }
        if self.rb_rf_only {
            for m in &mut out {
                m.rb_rf_only = true;
            }
        }
        out
    }

    /// The content address of this job: a canonical FNV-1a fold of the
    /// experiment kind, the fully-resolved [`ExperimentConfig`] (minus the
    /// worker count, which cannot affect results), every [`MachineConfig`]
    /// the experiment instantiates, and the workload scale.
    pub fn canonical_key(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_tag(0xC0); // domain tag: JobSpec
        h.write_tag(self.kind.canonical_tag());
        // Threads never affect the result; pick a fixed value so every
        // server computes the same key.
        self.experiment_config(1).fold_canonical(&mut h);
        let machines = self.machine_configs();
        h.write_usize(machines.len());
        for m in &machines {
            m.fold_canonical(&mut h);
        }
        if self.kind == ExperimentKind::Sleep {
            h.write_u64(self.sleep_ms);
        }
        // Post-v1 fields fold only when non-default so every job id minted
        // before they existed stays stable (the pinned golden hashes).
        if let Some(levels) = self.bypass {
            h.write_tag(0xB1);
            h.write_bool(levels.l1);
            h.write_bool(levels.l2);
            h.write_bool(levels.l3);
        }
        if self.rb_rf_only {
            h.write_tag(0xB2);
            h.write_bool(true);
        }
        if let Some(p) = self.point {
            // The machine itself is already folded above; the suite (which
            // machines cannot express) and the point fields are folded
            // explicitly so a point job never aliases another kind.
            h.write_tag(0xB3);
            h.write_tag(p.model.canonical_tag());
            h.write_usize(p.width);
            h.write_tag(match p.steering {
                SteeringPolicy::RoundRobinPairs => 0,
                SteeringPolicy::DependenceAware => 1,
            });
            h.write_tag(p.suite.canonical_tag());
        }
        if let Some(src) = &self.custom {
            // The program text IS the experiment: fold it whole so two
            // custom jobs alias exactly when their sources are identical.
            h.write_tag(0xB4);
            h.write_str(src);
        }
        h.finish()
    }

    /// The cache key in its wire form: 16 lowercase hex digits. Doubles as
    /// the job id — the protocol is content-addressed end to end.
    pub fn job_id(&self) -> String {
        format!("{:016x}", self.canonical_key())
    }

    /// Serializes the spec for a `submit` envelope.
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.set("experiment", Json::Str(self.kind.name().to_string()));
        o.set("scale", Json::Str(scale_name(self.scale).to_string()));
        o.set(
            "datapath",
            Json::Str(
                match self.datapath {
                    DatapathMode::Fast => "fast",
                    DatapathMode::Faithful => "faithful",
                }
                .to_string(),
            ),
        );
        if self.kind == ExperimentKind::Sleep {
            o.set("millis", Json::UInt(self.sleep_ms));
        }
        if let Some(levels) = self.bypass {
            o.set("bypass", Json::Str(levels.label()));
        }
        if self.rb_rf_only {
            o.set("rb-rf-only", Json::Bool(true));
        }
        if let Some(p) = &self.point {
            o.set("point", p.to_json());
        }
        if let Some(src) = &self.custom {
            o.set("source", Json::Str(src.clone()));
        }
        o
    }

    /// Decodes a spec from a `submit` envelope.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on missing/unknown fields.
    pub fn from_json(v: &Json) -> Result<Self, WireError> {
        let kind = ExperimentKind::from_name(
            v.get("experiment")
                .and_then(Json::as_str)
                .ok_or_else(|| wire_err("job spec missing `experiment`"))?,
        )?;
        let scale = match v.get("scale").and_then(Json::as_str) {
            Some(s) => scale_from_name(s)?,
            None => Scale::Test,
        };
        let datapath = match v.get("datapath").and_then(Json::as_str) {
            Some("fast") | None => DatapathMode::Fast,
            Some("faithful") => DatapathMode::Faithful,
            Some(other) => {
                return Err(wire_err(format!(
                    "unknown datapath `{other}` (expected fast|faithful)"
                )))
            }
        };
        let sleep_ms = v.get("millis").and_then(Json::as_u64).unwrap_or(0);
        let bypass = match v.get("bypass").and_then(Json::as_str) {
            Some(label) => Some(bypass_from_label(label)?),
            None => None,
        };
        let rb_rf_only = match v.get("rb-rf-only") {
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err(wire_err("`rb-rf-only` must be a boolean")),
            None => false,
        };
        let point = match v.get("point") {
            Some(p) => Some(PointSpec::from_json(p)?),
            None => None,
        };
        if (kind == ExperimentKind::Point) != point.is_some() {
            return Err(wire_err(if point.is_some() {
                "`point` is only valid on a point job"
            } else {
                "point job missing its `point` spec"
            }));
        }
        let custom = match v.get("source") {
            Some(Json::Str(src)) => Some(src.clone()),
            Some(_) => return Err(wire_err("`source` must be a string")),
            None => None,
        };
        if (kind == ExperimentKind::Custom) != custom.is_some() {
            return Err(wire_err(if custom.is_some() {
                "`source` is only valid on a custom job"
            } else {
                "custom job missing its `source` text"
            }));
        }
        Ok(JobSpec {
            kind,
            scale,
            datapath,
            sleep_ms,
            bypass,
            rb_rf_only,
            point,
            custom,
        })
    }

    /// Runs the job and returns its result body — exactly the document the
    /// matching `repro-*` binary would emit under `"result"`.
    ///
    /// `cancelled` is polled by cancellable kinds (currently [`ExperimentKind::Sleep`],
    /// every 10 ms); simulator experiments run to completion once started —
    /// deadline enforcement for those happens at dequeue time.
    ///
    /// # Panics
    ///
    /// Panics if a simulation faults (propagated to the worker, which
    /// reports the job as failed).
    pub fn run(&self, threads: usize, cancelled: &std::sync::atomic::AtomicBool) -> Json {
        use std::sync::atomic::Ordering;
        let cfg = self.experiment_config(threads);
        match self.kind {
            ExperimentKind::Figure9 => json::ipc_figure(&experiments::figure9(&cfg)),
            ExperimentKind::Figure10 => json::ipc_figure(&experiments::figure10(&cfg)),
            ExperimentKind::Figure11 => json::ipc_figure(&experiments::figure11(&cfg)),
            ExperimentKind::Figure12 => json::ipc_figure(&experiments::figure12(&cfg)),
            ExperimentKind::Figure13 => json::figure13(&experiments::figure13(&cfg)),
            ExperimentKind::Figure14 => json::figure14(&experiments::figure14(&cfg)),
            ExperimentKind::Table1 => {
                let (merged, per) = experiments::table1(&cfg);
                json::table1(&merged, &per)
            }
            ExperimentKind::Table3 => json::table3(&experiments::table3()),
            ExperimentKind::Programs => json::programs(&experiments::programs(&cfg)),
            ExperimentKind::Delays => json::delay_report(&experiments::delay_report()),
            ExperimentKind::Point => {
                let benches = self.point.map(|p| p.suite.benchmarks()).unwrap_or_default();
                match self.machine_configs().into_iter().next() {
                    Some(machine) => json::point(&experiments::run_point(
                        &machine,
                        &benches,
                        self.scale,
                        threads,
                    )),
                    None => {
                        // A point job without a buildable machine can only
                        // be constructed by bypassing `from_json`; report
                        // it structurally rather than panicking a worker.
                        let mut o = Json::object();
                        o.set(
                            "error",
                            Json::Str("point job has no buildable machine".into()),
                        );
                        o
                    }
                }
            }
            ExperimentKind::Custom => {
                // Assembly and safety were validated at submit time; decode
                // failures here (only reachable by constructing a spec
                // in-process) are reported structurally, not panicked.
                let parsed = self
                    .custom
                    .as_deref()
                    .ok_or_else(|| "custom job has no source".to_string())
                    .and_then(|src| {
                        redbin_workload::text::parse(src).map_err(|e| e.to_string())
                    });
                match parsed {
                    Err(e) => {
                        let mut o = Json::object();
                        o.set("error", Json::Str(e));
                        o
                    }
                    Ok(prog) => {
                        let prog = prog.with_name("custom");
                        let mut o = Json::object();
                        o.set("instructions", Json::UInt(prog.code.len() as u64));
                        let mut per_model = Json::object();
                        for machine in self.machine_configs() {
                            let name = machine.model.name().to_string();
                            let stats = redbin_sim::Simulator::new(machine, &prog)
                                .run()
                                .unwrap_or_else(|e| panic!("custom program faults: {e}"));
                            let mut row = Json::object();
                            row.set("ipc", Json::Num(stats.ipc()));
                            row.set("retired", Json::UInt(stats.retired));
                            row.set("cycles", Json::UInt(stats.cycles));
                            per_model.set(&name, row);
                        }
                        o.set("models", per_model);
                        o
                    }
                }
            }
            ExperimentKind::Sleep => {
                let mut remaining = self.sleep_ms;
                while remaining > 0 && !cancelled.load(Ordering::Relaxed) {
                    let step = remaining.min(10);
                    std::thread::sleep(std::time::Duration::from_millis(step));
                    remaining -= step;
                }
                let mut o = Json::object();
                o.set("slept-ms", Json::UInt(self.sleep_ms - remaining));
                o.set("cancelled", Json::Bool(cancelled.load(Ordering::Relaxed)));
                o
            }
        }
    }

    /// The Spec suite behind an IPC figure, if any (used for reporting).
    pub fn suite(&self) -> Option<Suite> {
        match self.kind {
            ExperimentKind::Figure9 | ExperimentKind::Figure11 => Some(Suite::Spec2000),
            ExperimentKind::Figure10 | ExperimentKind::Figure12 => Some(Suite::Spec95),
            _ => None,
        }
    }
}

/// Where a job stands in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting in the queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the result is in the cache.
    Done,
    /// The job function panicked.
    Failed,
    /// The deadline passed before a worker could start (or finish) it.
    Expired,
}

impl JobState {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Expired => "expired",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on unknown states.
    pub fn from_name(name: &str) -> Result<Self, WireError> {
        match name {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "done" => Ok(JobState::Done),
            "failed" => Ok(JobState::Failed),
            "expired" => Ok(JobState::Expired),
            other => Err(wire_err(format!("unknown job state `{other}`"))),
        }
    }

    /// `true` once the job will make no further progress.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Expired)
    }
}

/// A client→server envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job, optionally with a deadline in milliseconds from
    /// acceptance.
    Submit {
        /// What to run.
        spec: JobSpec,
        /// Deadline in milliseconds (None = server default).
        deadline_ms: Option<u64>,
    },
    /// Ask for a job's state.
    Poll {
        /// The job id ([`JobSpec::job_id`]).
        job: String,
    },
    /// Fetch a completed job's result body.
    Fetch {
        /// The job id.
        job: String,
    },
    /// Ask for server statistics.
    Stats,
    /// Ask for a telemetry dump (text exposition format; wire v2).
    Metrics,
    /// Ask the server to drain and exit.
    Shutdown,
}

impl Request {
    /// Serializes to a one-line wire envelope (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut o = Json::object();
        o.set("v", Json::UInt(WIRE_VERSION));
        match self {
            Request::Submit { spec, deadline_ms } => {
                o.set("type", Json::Str("submit".into()));
                o.set("job", spec.to_json());
                if let Some(ms) = deadline_ms {
                    o.set("deadline-ms", Json::UInt(*ms));
                }
            }
            Request::Poll { job } => {
                o.set("type", Json::Str("poll".into()));
                o.set("job", Json::Str(job.clone()));
            }
            Request::Fetch { job } => {
                o.set("type", Json::Str("fetch".into()));
                o.set("job", Json::Str(job.clone()));
            }
            Request::Stats => {
                o.set("type", Json::Str("stats".into()));
            }
            Request::Metrics => {
                o.set("type", Json::Str("metrics".into()));
            }
            Request::Shutdown => {
                o.set("type", Json::Str("shutdown".into()));
            }
        }
        o.to_compact()
    }

    /// Decodes a wire line.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed JSON, wrong version, or an
    /// unknown request type.
    pub fn from_line(line: &str) -> Result<Self, WireError> {
        let v = json::parse(line.trim()).map_err(|e| wire_err(e.to_string()))?;
        check_version(&v)?;
        let job_str = |v: &Json| -> Result<String, WireError> {
            v.get("job")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| wire_err("missing `job` id"))
        };
        match v.get("type").and_then(Json::as_str) {
            Some("submit") => {
                let spec = JobSpec::from_json(
                    v.get("job").ok_or_else(|| wire_err("missing `job` spec"))?,
                )?;
                let deadline_ms = v.get("deadline-ms").and_then(Json::as_u64);
                Ok(Request::Submit { spec, deadline_ms })
            }
            Some("poll") => Ok(Request::Poll { job: job_str(&v)? }),
            Some("fetch") => Ok(Request::Fetch { job: job_str(&v)? }),
            Some("stats") => Ok(Request::Stats),
            Some("metrics") => Ok(Request::Metrics),
            Some("shutdown") => Ok(Request::Shutdown),
            Some(other) => Err(wire_err(format!("unknown request type `{other}`"))),
            None => Err(wire_err("missing request `type`")),
        }
    }
}

fn check_version(v: &Json) -> Result<(), WireError> {
    match v.get("v").and_then(Json::as_u64) {
        Some(WIRE_VERSION) => Ok(()),
        Some(other) => Err(wire_err(format!(
            "unsupported wire version {other} (this build speaks {WIRE_VERSION})"
        ))),
        None => Err(wire_err("missing wire version `v`")),
    }
}

/// A server→client envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The job was accepted (or found already cached/in flight).
    Accepted {
        /// The job id to poll/fetch with.
        job: String,
        /// `true` if the result was already in the cache at submit time.
        cache_hit: bool,
        /// Current state (`Done` for a cache hit).
        state: JobState,
    },
    /// Backpressure: the queue is full; retry after the given delay.
    RetryAfter {
        /// Suggested delay before resubmitting.
        seconds: u64,
    },
    /// A poll answer.
    Status {
        /// The job id.
        job: String,
        /// Current state.
        state: JobState,
        /// The failure message, for [`JobState::Failed`] / [`JobState::Expired`].
        error: Option<String>,
    },
    /// A fetched result.
    Result {
        /// The job id.
        job: String,
        /// The result body — byte-identical for every fetch of the same id.
        body: Json,
    },
    /// Server statistics.
    Stats {
        /// The statistics document (see `SERVING.md`).
        body: Json,
    },
    /// A telemetry dump (wire v2).
    Metrics {
        /// The registry rendered in the text exposition format (see
        /// `OBSERVABILITY.md`).
        text: String,
    },
    /// The request could not be honored.
    Error {
        /// What went wrong.
        message: String,
    },
    /// Acknowledges a shutdown; the server drains and exits after sending.
    Bye {
        /// Jobs that were still queued or running when shutdown began
        /// (all of them are drained before exit).
        draining: u64,
    },
}

impl Response {
    /// Serializes to a one-line wire envelope (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut o = Json::object();
        o.set("v", Json::UInt(WIRE_VERSION));
        match self {
            Response::Accepted { job, cache_hit, state } => {
                o.set("type", Json::Str("accepted".into()));
                o.set("job", Json::Str(job.clone()));
                o.set(
                    "cache",
                    Json::Str(if *cache_hit { "hit" } else { "miss" }.into()),
                );
                o.set("state", Json::Str(state.name().into()));
            }
            Response::RetryAfter { seconds } => {
                o.set("type", Json::Str("retry-after".into()));
                o.set("seconds", Json::UInt(*seconds));
            }
            Response::Status { job, state, error } => {
                o.set("type", Json::Str("status".into()));
                o.set("job", Json::Str(job.clone()));
                o.set("state", Json::Str(state.name().into()));
                if let Some(e) = error {
                    o.set("error", Json::Str(e.clone()));
                }
            }
            Response::Result { job, body } => {
                o.set("type", Json::Str("result".into()));
                o.set("job", Json::Str(job.clone()));
                o.set("body", body.clone());
            }
            Response::Stats { body } => {
                o.set("type", Json::Str("stats".into()));
                o.set("body", body.clone());
            }
            Response::Metrics { text } => {
                o.set("type", Json::Str("metrics".into()));
                o.set("text", Json::Str(text.clone()));
            }
            Response::Error { message } => {
                o.set("type", Json::Str("error".into()));
                o.set("message", Json::Str(message.clone()));
            }
            Response::Bye { draining } => {
                o.set("type", Json::Str("bye".into()));
                o.set("draining", Json::UInt(*draining));
            }
        }
        o.to_compact()
    }

    /// Decodes a wire line.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed JSON, wrong version, or an
    /// unknown response type.
    pub fn from_line(line: &str) -> Result<Self, WireError> {
        let v = json::parse(line.trim()).map_err(|e| wire_err(e.to_string()))?;
        check_version(&v)?;
        let job_str = |v: &Json| -> Result<String, WireError> {
            v.get("job")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| wire_err("missing `job` id"))
        };
        let state_of = |v: &Json| -> Result<JobState, WireError> {
            JobState::from_name(
                v.get("state")
                    .and_then(Json::as_str)
                    .ok_or_else(|| wire_err("missing `state`"))?,
            )
        };
        match v.get("type").and_then(Json::as_str) {
            Some("accepted") => Ok(Response::Accepted {
                job: job_str(&v)?,
                cache_hit: v.get("cache").and_then(Json::as_str) == Some("hit"),
                state: state_of(&v)?,
            }),
            Some("retry-after") => Ok(Response::RetryAfter {
                seconds: v
                    .get("seconds")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| wire_err("missing `seconds`"))?,
            }),
            Some("status") => Ok(Response::Status {
                job: job_str(&v)?,
                state: state_of(&v)?,
                error: v.get("error").and_then(Json::as_str).map(str::to_string),
            }),
            Some("result") => Ok(Response::Result {
                job: job_str(&v)?,
                body: v
                    .get("body")
                    .cloned()
                    .ok_or_else(|| wire_err("missing `body`"))?,
            }),
            Some("stats") => Ok(Response::Stats {
                body: v
                    .get("body")
                    .cloned()
                    .ok_or_else(|| wire_err("missing `body`"))?,
            }),
            Some("metrics") => Ok(Response::Metrics {
                text: v
                    .get("text")
                    .and_then(Json::as_str)
                    .ok_or_else(|| wire_err("missing `text`"))?
                    .to_string(),
            }),
            Some("error") => Ok(Response::Error {
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified")
                    .to_string(),
            }),
            Some("bye") => Ok(Response::Bye {
                draining: v.get("draining").and_then(Json::as_u64).unwrap_or(0),
            }),
            Some(other) => Err(wire_err(format!("unknown response type `{other}`"))),
            None => Err(wire_err("missing response `type`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            Request::Submit {
                spec: JobSpec::new(ExperimentKind::Figure9, Scale::Test),
                deadline_ms: Some(60_000),
            },
            Request::Submit {
                spec: JobSpec::sleep(250),
                deadline_ms: None,
            },
            Request::Poll { job: "deadbeef01234567".into() },
            Request::Fetch { job: "deadbeef01234567".into() },
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
        ];
        for r in reqs {
            let line = r.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Request::from_line(&line).expect("decodes"), r);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = vec![
            Response::Accepted {
                job: "ab".into(),
                cache_hit: true,
                state: JobState::Done,
            },
            Response::RetryAfter { seconds: 2 },
            Response::Status {
                job: "ab".into(),
                state: JobState::Expired,
                error: Some("deadline exceeded".into()),
            },
            Response::Result {
                job: "ab".into(),
                body: Json::Obj(vec![("rows".into(), Json::Arr(vec![]))]),
            },
            Response::Stats { body: Json::object() },
            Response::Metrics {
                text: "# TYPE jobs counter\njobs 3\n".into(),
            },
            Response::Error { message: "nope".into() },
            Response::Bye { draining: 3 },
        ];
        for r in resps {
            let line = r.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Response::from_line(&line).expect("decodes"), r);
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        // One below and one far above the version this build speaks.
        assert!(Request::from_line(r#"{"v":1,"type":"stats"}"#).is_err());
        assert!(Request::from_line(r#"{"type":"stats"}"#).is_err());
        assert!(Response::from_line(r#"{"v":99,"type":"bye"}"#).is_err());
    }

    #[test]
    fn unknown_kinds_are_rejected() {
        assert!(Request::from_line(r#"{"v":2,"type":"frobnicate"}"#).is_err());
        assert!(ExperimentKind::from_name("figure99").is_err());
        assert!(scale_from_name("huge").is_err());
        let bad_spec = r#"{"v":2,"type":"submit","job":{"experiment":"figure9","scale":"huge"}}"#;
        assert!(Request::from_line(bad_spec).is_err());
    }

    #[test]
    fn job_ids_are_content_addressed() {
        let a = JobSpec::new(ExperimentKind::Figure9, Scale::Test);
        let b = JobSpec::new(ExperimentKind::Figure9, Scale::Test);
        assert_eq!(a.job_id(), b.job_id());
        assert_eq!(a.job_id().len(), 16);
        let c = JobSpec::new(ExperimentKind::Figure9, Scale::Full);
        assert_ne!(a.job_id(), c.job_id());
        let d = JobSpec::new(ExperimentKind::Figure10, Scale::Test);
        assert_ne!(a.job_id(), d.job_id());
        let mut e = a.clone();
        e.datapath = DatapathMode::Faithful;
        assert_ne!(a.job_id(), e.job_id());
        assert_ne!(JobSpec::sleep(1).job_id(), JobSpec::sleep(2).job_id());
        // Post-v1 knobs change the id when set…
        let f = a.clone().with_bypass(BypassLevels::without(&[3]));
        assert_ne!(a.job_id(), f.job_id());
        let g = a.clone().with_rb_rf_only();
        assert_ne!(a.job_id(), g.job_id());
        assert_ne!(f.job_id(), g.job_id());
        // …and even on kinds with no timing machines (fold is explicit).
        let s = JobSpec::sleep(1).with_rb_rf_only();
        assert_ne!(JobSpec::sleep(1).job_id(), s.job_id());
    }

    #[test]
    fn bypass_labels_roundtrip_on_the_wire() {
        for removed in [&[][..], &[1], &[2], &[3], &[2, 3], &[1, 2, 3]] {
            let levels = BypassLevels::without(removed);
            assert_eq!(bypass_from_label(&levels.label()).expect("parses"), levels);
        }
        assert!(bypass_from_label("no-2").is_err());
        assert!(bypass_from_label("No-4").is_err());
        assert!(bypass_from_label("").is_err());

        let spec = JobSpec::new(ExperimentKind::Figure9, Scale::Test)
            .with_bypass(BypassLevels::without(&[2, 3]))
            .with_rb_rf_only();
        let back = JobSpec::from_json(&spec.to_json()).expect("roundtrips");
        assert_eq!(back, spec);
        for m in back.machine_configs() {
            assert!(m.rb_rf_only);
            assert_eq!(m.bypass, BypassLevels::without(&[2, 3]));
        }
    }

    #[test]
    fn specs_roundtrip_through_json() {
        for &kind in ExperimentKind::all() {
            for scale in [Scale::Test, Scale::Small, Scale::Full] {
                let mut spec = JobSpec::new(kind, scale);
                spec.sleep_ms = if kind == ExperimentKind::Sleep { 42 } else { 0 };
                if kind == ExperimentKind::Point {
                    spec.point = Some(PointSpec {
                        model: CoreModel::RbLimited,
                        width: 8,
                        steering: SteeringPolicy::DependenceAware,
                        suite: PointSuite::Quick,
                    });
                }
                if kind == ExperimentKind::Custom {
                    spec.custom = Some("\thalt\n".to_string());
                }
                let back = JobSpec::from_json(&spec.to_json()).expect("roundtrips");
                assert_eq!(back, spec);
            }
        }
    }

    #[test]
    fn custom_specs_are_validated_content_addressed_and_runnable() {
        let src = "\
        .reg r1, 5
top:    subq r1, #1, r1
        bgt r1, top
        halt
";
        let spec = JobSpec::custom_program(src, Scale::Test);
        let back = JobSpec::from_json(&spec.to_json()).expect("roundtrips");
        assert_eq!(back, spec);
        // The source is the identity: different text, different job.
        let other = JobSpec::custom_program("\thalt\n", Scale::Test);
        assert_ne!(spec.job_id(), other.job_id());
        assert_eq!(spec.machine_configs().len(), 4, "four 8-wide machines");

        // `source` is rejected off a custom job, and required on one.
        let mut bad = JobSpec::new(ExperimentKind::Figure9, Scale::Test).to_json();
        bad.set("source", Json::Str("halt".into()));
        assert!(JobSpec::from_json(&bad).is_err());
        let mut missing = spec.to_json();
        missing.set("source", Json::Null);
        assert!(JobSpec::from_json(&missing).is_err());

        let out = spec.run(1, &std::sync::atomic::AtomicBool::new(false));
        let models = out.get("models").expect("models");
        for m in CoreModel::all() {
            let row = models.get(m.name()).expect("model row");
            // 5 loop trips x 2 instructions; the simulator does not
            // count the halt itself as retired.
            assert_eq!(row.get("retired"), Some(&Json::UInt(10)));
        }
    }

    #[test]
    fn point_specs_are_validated_and_content_addressed() {
        let base = PointSpec {
            model: CoreModel::Baseline,
            width: 8,
            steering: SteeringPolicy::RoundRobinPairs,
            suite: PointSuite::Quick,
        };
        let spec = JobSpec::point(base, Scale::Test);
        let back = JobSpec::from_json(&spec.to_json()).expect("roundtrips");
        assert_eq!(back, spec);

        // The single machine is built from the point spec, with the
        // post-v1 overrides applied on top.
        let machines = spec.machine_configs();
        assert_eq!(machines.len(), 1);
        assert_eq!(machines[0].model, CoreModel::Baseline);
        assert_eq!(machines[0].width, 8);
        let ablated = spec.clone()
            .with_bypass(BypassLevels::without(&[2]))
            .with_rb_rf_only();
        let m = &ablated.machine_configs()[0];
        assert!(m.rb_rf_only);
        assert_eq!(m.bypass, BypassLevels::without(&[2]));

        // Every axis of the point moves the job id.
        let mut ids = std::collections::HashSet::new();
        for model in [CoreModel::Baseline, CoreModel::Ideal] {
            for width in [4usize, 8] {
                for steering in [
                    SteeringPolicy::RoundRobinPairs,
                    SteeringPolicy::DependenceAware,
                ] {
                    for suite in [PointSuite::Quick, PointSuite::All] {
                        let p = PointSpec { model, width, steering, suite };
                        assert!(ids.insert(JobSpec::point(p, Scale::Test).job_id()));
                    }
                }
            }
        }
        assert_eq!(ids.len(), 16);
        assert!(ids.insert(ablated.job_id()), "overrides move the id");

        // Decode-time validation: bad widths and misplaced `point` keys.
        let mut bad_width = spec.to_json();
        let mut p = base.to_json();
        p.set("width", Json::UInt(6));
        bad_width.set("point", p);
        assert!(JobSpec::from_json(&bad_width).is_err());
        let bare = JobSpec::new(ExperimentKind::Point, Scale::Test);
        assert!(JobSpec::from_json(&bare.to_json()).is_err());
        let mut misplaced = JobSpec::new(ExperimentKind::Figure9, Scale::Test).to_json();
        misplaced.set("point", base.to_json());
        assert!(JobSpec::from_json(&misplaced).is_err());
        assert!(PointSuite::from_name("huge").is_err());
        assert!(model_from_name("pentium").is_err());
        assert!(steering_from_name("static").is_err());
    }

    #[test]
    fn point_suites_cover_the_benchmarks() {
        assert_eq!(PointSuite::Quick.benchmarks().len(), 4);
        assert_eq!(PointSuite::Spec95.benchmarks().len(), 8);
        assert_eq!(PointSuite::Spec2000.benchmarks().len(), 12);
        assert_eq!(PointSuite::All.benchmarks().len(), 20);
        for &s in PointSuite::all() {
            assert_eq!(PointSuite::from_name(s.name()).expect("parses"), s);
        }
        for &m in CoreModel::all() {
            assert_eq!(model_from_name(model_name(m)).expect("parses"), m);
        }
    }

    #[test]
    fn sleep_jobs_run_and_cancel() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let cancelled = AtomicBool::new(false);
        let body = JobSpec::sleep(20).run(1, &cancelled);
        assert_eq!(body.get("slept-ms").and_then(Json::as_u64), Some(20));
        cancelled.store(true, Ordering::Relaxed);
        let body = JobSpec::sleep(10_000).run(1, &cancelled);
        assert_eq!(body.get("cancelled"), Some(&Json::Bool(true)));
        assert!(body.get("slept-ms").and_then(Json::as_u64).unwrap() < 10_000);
    }
}
