//! # redbin — redundant binary execution cores and limited bypass networks
//!
//! A from-scratch reproduction of Mary D. Brown and Yale N. Patt,
//! *"Using Internal Redundant Representations and Limited Bypass to Support
//! Pipelined Adders and Register Files"* (HPCA 2002), as a production-style
//! Rust library.
//!
//! The crate re-exports the full substrate stack and adds the experiment
//! drivers that regenerate every table and figure of the paper:
//!
//! * [`arith`] — redundant binary (signed-digit) arithmetic: constant-depth
//!   adders, format conversion, overflow handling, sum-addressed memory.
//! * [`gates`] — gate-level netlists and the §3.4 delay comparison.
//! * [`isa`] — the Alpha-like instruction set and functional emulator.
//! * [`workload`] — twenty SPECint95/SPECint2000 proxy kernels.
//! * [`sim`] — the cycle-level out-of-order core with dual-format result
//!   tracking, limited bypass networks, and clustered execution.
//! * [`experiments`] — one driver per table/figure (Table 1, Figures 9–14,
//!   the §3.4 delay table), with parallel execution across benchmarks.
//! * [`differential`] — the three-way differential oracle (emulator vs.
//!   fast simulator vs. faithful datapath vs. reference scheduler) behind
//!   the fuzz and whole-program suites.
//! * [`report`] — plain-text rendering of experiment results.
//! * [`json`] — dependency-free structured JSON output for every experiment
//!   (the `--json` flag of the `repro-*` binaries).
//! * [`pool`] — the scoped worker pool behind the parallel fan-out (shared
//!   with the `redbin-serve` batch service).
//! * [`wire`] — newline-delimited request/response envelopes for the
//!   `redbin-served` job server and its clients.
//! * [`telemetry`] — metrics (counters, gauges, histograms) and monotonic
//!   wall-clock timing; see `OBSERVABILITY.md`.
//!
//! # Quickstart
//!
//! ```
//! use redbin::prelude::*;
//!
//! // Simulate one benchmark on the RB-full machine.
//! let config = MachineConfig::rb_full(8);
//! let program = Benchmark::Go.program(Scale::Test);
//! let stats = Simulator::new(config, &program).run().expect("runs");
//! println!("go: {:.2} IPC", stats.ipc());
//! # assert!(stats.ipc() > 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use redbin_arith as arith;
pub use redbin_gates as gates;
pub use redbin_isa as isa;
pub use redbin_sim as sim;
pub use redbin_telemetry as telemetry;
pub use redbin_workload as workload;

pub mod cli;
pub mod differential;
pub mod experiments;
pub mod json;
pub mod pool;
pub mod report;
pub mod wire;

/// The most common imports, bundled.
pub mod prelude {
    pub use crate::experiments::{self, ExperimentConfig};
    pub use crate::json;
    pub use crate::report;
    pub use redbin_arith::{RbAdder, RbNumber};
    pub use redbin_sim::{
        BypassLevels, CoreModel, DatapathMode, MachineConfig, SimStats, Simulator,
    };
    pub use redbin_workload::{Benchmark, Scale, Suite};
}
