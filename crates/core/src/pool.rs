//! A small scoped worker pool for embarrassingly parallel job fan-out.
//!
//! Extracted from the experiment drivers so the serving layer
//! (`redbin-serve`) and any other batch consumer can share one
//! implementation. The pool is deliberately simple: scoped threads pull
//! job indices from an atomic counter, so results are deterministic in
//! content and order regardless of the worker count — a property the
//! golden-snapshot tests rely on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `n` independent jobs on a small thread pool, preserving order.
///
/// `f(i)` is called exactly once for each `i in 0..n`, from `threads`
/// workers (clamped to `1..=n`). The returned vector has `f(i)` at index
/// `i` — output order never depends on scheduling.
///
/// # Panics
///
/// Propagates panics from the job function: if any `f(i)` panics, the
/// panic resurfaces on the caller's thread once the scope joins (no
/// deadlock, no silently missing results).
pub fn run_jobs<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let workers = threads.clamp(1, n.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                // A worker that panicked inside `f` poisons this mutex;
                // surviving workers unwind too (via the expect) and the
                // scope re-raises the original panic at join.
                results.lock().expect("a sibling job panicked")[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("a job panicked")
        .into_iter()
        .map(|o| o.expect("job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_every_worker_count() {
        for threads in [1, 2, 3, 8, 64] {
            let out = run_jobs(10, threads, |i| i * i);
            assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
        }
    }

    #[test]
    fn runs_each_job_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = run_jobs(100, 7, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run_jobs(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panics_propagate_without_deadlock() {
        // The regression of interest: a panicking job must fail the whole
        // call promptly (scope join re-raises), not hang the pool or
        // return a partial result vector.
        let result = std::panic::catch_unwind(|| {
            run_jobs(8, 4, |i| {
                if i == 5 {
                    panic!("job 5 exploded");
                }
                i
            })
        });
        let err = result.expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("exploded") || msg.contains("panicked"),
            "unexpected panic payload: {msg:?}"
        );
    }
}
