//! A small scoped worker pool for embarrassingly parallel job fan-out.
//!
//! Extracted from the experiment drivers so the serving layer
//! (`redbin-serve`) and any other batch consumer can share one
//! implementation. The pool is deliberately simple: scoped threads pull
//! job indices from an atomic counter, so results are deterministic in
//! content and order regardless of the worker count — a property the
//! golden-snapshot tests rely on.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `n` independent jobs on a small thread pool, preserving order.
///
/// `f(i)` is called exactly once for each `i in 0..n`, from `threads`
/// workers (clamped to `1..=n`). The returned vector has `f(i)` at index
/// `i` — output order never depends on scheduling.
///
/// Each worker accumulates `(index, result)` pairs in its own local
/// buffer — there is no shared lock on the result path (the previous
/// implementation serialized every write through one global
/// `Mutex<Vec<Option<T>>>`). The buffers are merged into index order
/// after the scope joins.
///
/// # Panics
///
/// Propagates panics from the job function: if any `f(i)` panics, the
/// panic resurfaces on the caller's thread once the scope joins (no
/// deadlock, no silently missing results). When several jobs panic, the
/// first spawned worker's panic wins.
pub fn run_jobs<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let next = AtomicUsize::new(0);
    let workers = threads.clamp(1, n.max(1));
    let locals = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        let mut locals = Vec::with_capacity(workers);
        for h in handles {
            match h.join() {
                Ok(local) => locals.push(local),
                // Re-raise the worker's own panic payload on the caller's
                // thread (joining first keeps the scope from re-raising).
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        locals
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, out) in locals.into_iter().flatten() {
        debug_assert!(slots.get(i).is_some_and(Option::is_none), "job {i} ran twice");
        if let Some(slot) = slots.get_mut(i) {
            *slot = Some(out);
        }
    }
    slots
        .into_iter()
        .map(|o| o.expect("job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_every_worker_count() {
        for threads in [1, 2, 3, 8, 64] {
            let out = run_jobs(10, threads, |i| i * i);
            assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
        }
    }

    #[test]
    fn runs_each_job_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = run_jobs(100, 7, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run_jobs(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panics_propagate_without_deadlock() {
        // The regression of interest: a panicking job must fail the whole
        // call promptly (scope join re-raises), not hang the pool or
        // return a partial result vector.
        let result = std::panic::catch_unwind(|| {
            run_jobs(8, 4, |i| {
                if i == 5 {
                    panic!("job 5 exploded");
                }
                i
            })
        });
        let err = result.expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("exploded") || msg.contains("panicked"),
            "unexpected panic payload: {msg:?}"
        );
    }
}
