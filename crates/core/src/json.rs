//! A dependency-free structured JSON layer for experiment results.
//!
//! The workspace builds offline, so there is no serde: this module provides
//! a small [`Json`] value type, a deterministic pretty-printer, a strict
//! parser (used by the tests to validate emitted documents), and one
//! serializer per experiment result in [`crate::experiments`].
//!
//! Determinism matters here — the golden-snapshot tests compare emitted
//! documents byte-for-byte. Object keys keep insertion order, and floats
//! are formatted with Rust's shortest-roundtrip `Display`, which is
//! platform-independent. Non-finite floats serialize as `null` (JSON has
//! no representation for them).

use std::fmt::Write as _;

use redbin_gates::report::DelayReport;
use redbin_isa::format::{Table1Counts, Table1Row};
use redbin_sim::stats::{BypassCase, SimStats, StallCause};
use redbin_sim::CoreModel;
use redbin_workload::{Benchmark, Scale};

use crate::experiments::{Figure13, Figure14, IpcFigure, ProgramsReport, Table3Row};

/// A JSON value. Objects preserve insertion order (deterministic output).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float. NaN and infinities serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) a key in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        let Json::Obj(pairs) = self else {
            panic!("Json::set on a non-object")
        };
        if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            pairs.push((key.to_string(), value));
        }
        self
    }

    /// Object lookup (`None` on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as u64, if an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no whitespace — the framing used by
    /// the newline-delimited wire protocol ([`crate::wire`]), where one
    /// document occupies exactly one line.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => write_f64(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => write_f64(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's Display is shortest-roundtrip; ensure the token stays a JSON
    // number with a decimal point (Display prints `2` for 2.0).
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ---------------------------------------------------------------

/// A parse error: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting depth the parser accepts.
///
/// The parser is recursive, and since PR 2 it sits on a network boundary
/// (the `redbin-served` wire protocol), so unbounded nesting would let a
/// hostile peer overflow the stack with a few kilobytes of `[[[[…`. No
/// legitimate redbin document nests anywhere near this deep.
pub const MAX_DEPTH: usize = 128;

/// Parses a JSON document (strict: exactly one value plus whitespace,
/// container nesting limited to [`MAX_DEPTH`], duplicate object keys
/// rejected).
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing content"));
    }
    Ok(value)
}

fn err(at: usize, message: &str) -> ParseError {
    ParseError {
        at,
        message: message.to_string(),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", c as char)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn check_depth(at: usize, depth: usize) -> Result<(), ParseError> {
    if depth >= MAX_DEPTH {
        Err(err(at, "nesting too deep"))
    } else {
        Ok(())
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(err(*pos, &format!("expected '{lit}'")))
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ParseError> {
    check_depth(*pos, depth)?;
    expect(b, pos, b'{')?;
    let mut pairs: Vec<(String, Json)> = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        let key_at = *pos;
        let key = parse_string(b, pos)?;
        if pairs.iter().any(|(k, _)| *k == key) {
            // Our writer never emits duplicates; accepting them on a
            // network boundary would make lookups ambiguous.
            return Err(err(key_at, "duplicate object key"));
        }
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ParseError> {
    check_depth(*pos, depth)?;
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates are not emitted by our writer; reject.
                        let c = char::from_u32(code)
                            .ok_or_else(|| err(*pos, "unsupported \\u escape"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe
                // to do by char boundaries).
                let rest = &b[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = s.chars().next().ok_or_else(|| err(*pos, "empty"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let tok = std::str::from_utf8(&b[start..*pos]).map_err(|_| err(start, "bad number"))?;
    if tok.is_empty() || tok == "-" {
        return Err(err(start, "expected a value"));
    }
    if !float {
        if let Ok(u) = tok.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
        if let Ok(i) = tok.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    tok.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "bad number"))
}

// ---- experiment serializers -------------------------------------------------

/// Schema version stamped into every document produced by this module.
pub const SCHEMA_VERSION: u32 = 1;

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn benchmark_name(b: Benchmark) -> Json {
    Json::Str(b.name().to_string())
}

/// Serializes one run's [`SimStats`], including the stall-cause breakdown.
pub fn sim_stats(s: &SimStats) -> Json {
    let mut causes = Vec::new();
    for &c in StallCause::all() {
        causes.push((c.key().to_string(), Json::UInt(s.stall.count(c))));
    }
    let mut cases = Vec::new();
    for &c in BypassCase::all() {
        cases.push((
            c.label().to_string(),
            Json::UInt(s.bypass_cases.count(c)),
        ));
    }
    obj(vec![
        ("cycles", Json::UInt(s.cycles)),
        ("width", Json::UInt(s.width)),
        ("retired", Json::UInt(s.retired)),
        ("ipc", Json::Num(s.ipc())),
        ("branches", Json::UInt(s.branches)),
        ("mispredicts", Json::UInt(s.mispredicts)),
        ("icache-misses", Json::UInt(s.icache_misses)),
        ("dcache-accesses", Json::UInt(s.dcache_accesses)),
        ("dcache-misses", Json::UInt(s.dcache_misses)),
        ("l2-hits", Json::UInt(s.l2_hits)),
        ("l2-misses", Json::UInt(s.l2_misses)),
        ("store-forwards", Json::UInt(s.store_forwards)),
        ("load-blocks", Json::UInt(s.load_blocks)),
        ("bypassed-operands", Json::UInt(s.bypassed_operands)),
        ("regfile-operands", Json::UInt(s.regfile_operands)),
        ("fidelity-checks", Json::UInt(s.fidelity_checks)),
        (
            "stall",
            obj(vec![
                ("used", Json::UInt(s.stall.used)),
                ("charged", Json::UInt(s.stall.charged())),
                ("total-slots", Json::UInt(s.total_slots())),
                ("complete", Json::Bool(s.stall_accounting_is_complete())),
                ("causes", Json::Obj(causes)),
            ]),
        ),
        ("bypass-cases", Json::Obj(cases)),
    ])
}

/// Serializes a Figures 9–12 style result (IPC of the four machine models
/// per benchmark, plus the full statistics each IPC was derived from).
pub fn ipc_figure(fig: &IpcFigure) -> Json {
    let models: Vec<Json> = CoreModel::all()
        .iter()
        .map(|m| Json::Str(m.name().to_string()))
        .collect();
    let rows: Vec<Json> = fig
        .rows
        .iter()
        .map(|r| {
            let mut o = vec![
                ("benchmark", benchmark_name(r.benchmark)),
                (
                    "ipc",
                    Json::Obj(
                        CoreModel::all()
                            .iter()
                            .zip(r.ipc.iter())
                            .map(|(m, v)| (m.name().to_string(), Json::Num(*v)))
                            .collect(),
                    ),
                ),
            ];
            if !r.stats.is_empty() {
                o.push((
                    "stats",
                    Json::Obj(
                        CoreModel::all()
                            .iter()
                            .zip(r.stats.iter())
                            .map(|(m, s)| (m.name().to_string(), sim_stats(s)))
                            .collect(),
                    ),
                ));
            }
            obj(o)
        })
        .collect();
    let hm = fig.harmonic_means();
    let (gain, gap, limited_loss) = fig.headline_ratios();
    obj(vec![
        ("width", Json::UInt(fig.width as u64)),
        ("suite", Json::Str(fig.suite.name().to_string())),
        ("models", Json::Arr(models)),
        ("rows", Json::Arr(rows)),
        (
            "harmonic-means",
            Json::Obj(
                CoreModel::all()
                    .iter()
                    .zip(hm.iter())
                    .map(|(m, v)| (m.name().to_string(), Json::Num(*v)))
                    .collect(),
            ),
        ),
        (
            "headline-ratios",
            obj(vec![
                ("rb-full-over-baseline", Json::Num(gain)),
                ("gap-to-ideal", Json::Num(gap)),
                ("limited-loss", Json::Num(limited_loss)),
            ]),
        ),
    ])
}

/// Serializes the whole-program suite result (per-program IPC across the
/// four machines plus the emulator-verified checksum).
pub fn programs(rep: &ProgramsReport) -> Json {
    let models: Vec<Json> = CoreModel::all()
        .iter()
        .map(|m| Json::Str(m.name().to_string()))
        .collect();
    let rows: Vec<Json> = rep
        .rows
        .iter()
        .map(|r| {
            obj(vec![
                ("program", Json::Str(r.program.name().to_string())),
                ("checksum", Json::Str(format!("{:016x}", r.checksum))),
                ("emulated-instructions", Json::UInt(r.emulated)),
                (
                    "ipc",
                    Json::Obj(
                        CoreModel::all()
                            .iter()
                            .zip(r.ipc.iter())
                            .map(|(m, v)| (m.name().to_string(), Json::Num(*v)))
                            .collect(),
                    ),
                ),
                (
                    "stats",
                    Json::Obj(
                        CoreModel::all()
                            .iter()
                            .zip(r.stats.iter())
                            .map(|(m, s)| (m.name().to_string(), sim_stats(s)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let hm = rep.harmonic_means();
    obj(vec![
        ("width", Json::UInt(rep.width as u64)),
        ("models", Json::Arr(models)),
        ("rows", Json::Arr(rows)),
        (
            "harmonic-means",
            Json::Obj(
                CoreModel::all()
                    .iter()
                    .zip(hm.iter())
                    .map(|(m, v)| (m.name().to_string(), Json::Num(*v)))
                    .collect(),
            ),
        ),
    ])
}

/// Serializes the Figure 13 bypass-case distribution.
pub fn figure13(fig: &Figure13) -> Json {
    let rows: Vec<Json> = fig
        .rows
        .iter()
        .map(|(b, cases, frac)| {
            obj(vec![
                ("benchmark", benchmark_name(*b)),
                (
                    "cases",
                    Json::Obj(
                        BypassCase::all()
                            .iter()
                            .map(|c| (c.label().to_string(), Json::UInt(cases.count(*c))))
                            .collect(),
                    ),
                ),
                ("total", Json::UInt(cases.total())),
                ("bypassed-inst-fraction", Json::Num(*frac)),
            ])
        })
        .collect();
    obj(vec![("rows", Json::Arr(rows))])
}

/// Serializes the Figure 14 limited-bypass sweep.
pub fn figure14(fig: &Figure14) -> Json {
    let rows: Vec<Json> = fig
        .rows
        .iter()
        .map(|r| {
            obj(vec![
                ("config", Json::Str(r.label.clone())),
                ("hmean-ipc-w4", Json::Num(r.hmean_w4)),
                ("hmean-ipc-w8", Json::Num(r.hmean_w8)),
            ])
        })
        .collect();
    obj(vec![("rows", Json::Arr(rows))])
}

/// Serializes one design-space point result (the `point` experiment
/// behind `redbin-explore`; see `EXPLORATION.md`).
pub fn point(r: &crate::experiments::PointResult) -> Json {
    let rows: Vec<Json> = r
        .rows
        .iter()
        .map(|&(b, ipc)| {
            obj(vec![
                ("benchmark", benchmark_name(b)),
                ("ipc", Json::Num(ipc)),
            ])
        })
        .collect();
    obj(vec![
        ("model", Json::Str(r.machine.model.name().to_string())),
        ("width", Json::UInt(r.machine.width as u64)),
        ("bypass", Json::Str(r.machine.bypass.label())),
        (
            "steering",
            Json::Str(crate::wire::steering_name(r.machine.steering).to_string()),
        ),
        ("rb-rf-only", Json::Bool(r.machine.rb_rf_only)),
        ("rows", Json::Arr(rows)),
        ("hmean-ipc", Json::Num(r.hmean)),
        ("cycles", Json::UInt(r.cycles)),
        ("retired", Json::UInt(r.retired)),
    ])
}

fn table1_counts(c: &Table1Counts) -> Json {
    Json::Obj(
        Table1Row::all()
            .iter()
            .map(|r| (r.label().to_string(), Json::Num(c.fraction(*r))))
            .collect(),
    )
}

/// Serializes the Table 1 dynamic instruction mix.
pub fn table1(merged: &Table1Counts, per: &[(Benchmark, Table1Counts)]) -> Json {
    let rows: Vec<Json> = per
        .iter()
        .map(|(b, c)| {
            obj(vec![
                ("benchmark", benchmark_name(*b)),
                ("total", Json::UInt(c.total())),
                ("fractions", table1_counts(c)),
            ])
        })
        .collect();
    obj(vec![
        ("total", Json::UInt(merged.total())),
        ("fractions", table1_counts(merged)),
        ("per-benchmark", Json::Arr(rows)),
    ])
}

/// Serializes Table 3 (latency of each class per machine).
pub fn table3(rows: &[Table3Row]) -> Json {
    let rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            obj(vec![
                ("class", Json::Str(format!("{:?}", r.class))),
                ("baseline", Json::UInt(r.base)),
                ("rb", Json::UInt(r.rb)),
                (
                    "rb-tc",
                    r.rb_tc.map_or(Json::Null, Json::UInt),
                ),
                ("ideal", Json::UInt(r.ideal)),
            ])
        })
        .collect();
    obj(vec![("rows", Json::Arr(rows))])
}

/// Serializes the §3.4 gate-level delay report.
pub fn delay_report(r: &DelayReport) -> Json {
    let rows: Vec<Json> = r
        .rows
        .iter()
        .map(|row| {
            obj(vec![
                ("width", Json::UInt(row.width as u64)),
                ("ripple", Json::Num(row.ripple)),
                ("cla", Json::Num(row.cla)),
                ("carry-select", Json::Num(row.carry_select)),
                ("rb", Json::Num(row.rb)),
                ("converter", Json::Num(row.converter)),
                ("cla-over-rb", Json::Num(row.cla_over_rb())),
            ])
        })
        .collect();
    obj(vec![
        ("model", Json::Str(format!("{:?}", r.model))),
        ("rows", Json::Arr(rows)),
    ])
}

/// Serializes a `(x, harmonic-mean IPC)` sweep (conversion latency, cluster
/// delay, window size, …).
pub fn sweep(x_label: &str, rows: &[(u64, f64)]) -> Json {
    let rows: Vec<Json> = rows
        .iter()
        .map(|(x, hm)| {
            obj(vec![
                (x_label, Json::UInt(*x)),
                ("hmean-ipc", Json::Num(*hm)),
            ])
        })
        .collect();
    obj(vec![("rows", Json::Arr(rows))])
}

/// Serializes the steering-policy comparison.
pub fn steering(rows: &[(&'static str, usize, f64)]) -> Json {
    let rows: Vec<Json> = rows
        .iter()
        .map(|(name, width, hm)| {
            obj(vec![
                ("policy", Json::Str((*name).to_string())),
                ("width", Json::UInt(*width as u64)),
                ("hmean-ipc", Json::Num(*hm)),
            ])
        })
        .collect();
    obj(vec![("rows", Json::Arr(rows))])
}

/// Wraps an experiment body with run metadata: schema version, experiment
/// name, workload scale, and wall-clock/throughput figures.
pub fn with_meta(
    experiment: &str,
    scale: Scale,
    elapsed: std::time::Duration,
    body: Json,
) -> Json {
    obj(vec![
        ("schema-version", Json::UInt(u64::from(SCHEMA_VERSION))),
        ("experiment", Json::Str(experiment.to_string())),
        ("scale", Json::Str(format!("{scale:?}").to_lowercase())),
        ("wall-seconds", Json::Num(elapsed.as_secs_f64())),
        ("result", body),
    ])
}

/// Serializes a [`MetricsRegistry`](redbin_telemetry::MetricsRegistry):
/// counters and gauges become flat objects, each histogram an object with
/// its bounds, raw per-bucket counts (last entry = overflow), sum, and
/// count. Gauges are sanitised by the registry, so the document never
/// contains non-finite numbers.
pub fn metrics(reg: &redbin_telemetry::MetricsRegistry) -> Json {
    let counters = Json::Obj(
        reg.counters()
            .map(|(n, v)| (n.to_string(), Json::UInt(v)))
            .collect(),
    );
    let gauges = Json::Obj(
        reg.gauges()
            .map(|(n, v)| (n.to_string(), Json::Num(v)))
            .collect(),
    );
    let histograms = Json::Obj(
        reg.histograms()
            .map(|(n, h)| {
                (
                    n.to_string(),
                    obj(vec![
                        (
                            "bounds",
                            Json::Arr(h.bounds().iter().map(|b| Json::UInt(*b)).collect()),
                        ),
                        (
                            "counts",
                            Json::Arr(h.counts().iter().map(|c| Json::UInt(*c)).collect()),
                        ),
                        ("sum", Json::UInt(h.sum())),
                        ("count", Json::UInt(h.count())),
                    ]),
                )
            })
            .collect(),
    );
    obj(vec![
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
    ])
}

/// Writes a document to `path` (pretty-printed, trailing newline).
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn write_file(path: &std::path::Path, doc: &Json) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc.to_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_nesting() {
        let doc = obj(vec![
            ("a", Json::UInt(7)),
            ("b", Json::Num(1.5)),
            ("c", Json::Str("x \"quoted\"\nline".into())),
            ("d", Json::Arr(vec![Json::Null, Json::Bool(true), Json::Int(-3)])),
            ("e", Json::object()),
            ("f", Json::Arr(vec![])),
        ]);
        let text = doc.to_pretty();
        let back = parse(&text).expect("parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn floats_are_json_numbers() {
        let mut s = String::new();
        write_f64(&mut s, 2.0);
        assert_eq!(s, "2.0");
        let mut s = String::new();
        write_f64(&mut s, 0.1);
        assert_eq!(s, "0.1");
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        let mut s = String::new();
        write_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
    }

    #[test]
    fn compact_roundtrips_and_is_one_line() {
        let doc = obj(vec![
            ("a", Json::UInt(7)),
            ("b", Json::Num(1.5)),
            ("c", Json::Str("x\n\"y\"".into())),
            ("d", Json::Arr(vec![Json::Null, Json::Bool(false)])),
            ("e", Json::object()),
        ]);
        let line = doc.to_compact();
        assert!(!line.contains('\n'), "compact form must be newline-free");
        assert_eq!(parse(&line).expect("parses"), doc);
        assert_eq!(
            line,
            r#"{"a":7,"b":1.5,"c":"x\n\"y\"","d":[null,false],"e":{}}"#
        );
    }

    #[test]
    fn parser_enforces_depth_limit() {
        // MAX_DEPTH nested arrays parse; one more level errors instead of
        // overflowing the stack.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH - 1), "]".repeat(MAX_DEPTH - 1));
        assert!(parse(&ok).is_ok());
        let deep = format!("{}1{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        let e = parse(&deep).expect_err("too deep");
        assert!(e.message.contains("deep"), "{e}");
        // Unclosed deep nesting must also error, not crash.
        assert!(parse(&"[".repeat(100_000)).is_err());
        assert!(parse(&"{\"k\":[".repeat(100_000)).is_err());
    }

    #[test]
    fn parser_rejects_duplicate_keys() {
        let e = parse(r#"{"a":1,"a":2}"#).expect_err("duplicate");
        assert!(e.message.contains("duplicate"), "{e}");
        assert!(parse(r#"{"a":{"a":1},"b":{"a":2}}"#).is_ok());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parser_handles_numbers() {
        assert_eq!(parse("42").unwrap(), Json::UInt(42));
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(parse("2.5").unwrap(), Json::Num(2.5));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
    }

    #[test]
    fn sim_stats_document_is_valid_and_complete() {
        let mut s = SimStats {
            cycles: 10,
            width: 8,
            retired: 30,
            ..Default::default()
        };
        s.stall.used = 30;
        s.stall.charge(StallCause::FetchStarved, 50);
        let doc = sim_stats(&s);
        let text = doc.to_pretty();
        let back = parse(&text).expect("valid json");
        assert_eq!(back.get("cycles").and_then(Json::as_u64), Some(10));
        let stall = back.get("stall").expect("stall");
        assert_eq!(stall.get("used").and_then(Json::as_u64), Some(30));
        assert_eq!(stall.get("total-slots").and_then(Json::as_u64), Some(80));
        let causes = stall.get("causes").expect("causes");
        assert_eq!(
            causes.get("fetch-starved").and_then(Json::as_u64),
            Some(50)
        );
        // All seven causes present.
        for &c in StallCause::all() {
            assert!(causes.get(c.key()).is_some(), "missing {c}");
        }
    }

    #[test]
    fn set_replaces_and_appends() {
        let mut o = Json::object();
        o.set("k", Json::UInt(1));
        o.set("k", Json::UInt(2));
        o.set("l", Json::Bool(false));
        assert_eq!(o.get("k").and_then(Json::as_u64), Some(2));
        assert_eq!(o.get("l"), Some(&Json::Bool(false)));
    }

    #[test]
    fn meta_wrapper_carries_the_body() {
        let doc = with_meta(
            "figure9",
            Scale::Test,
            std::time::Duration::from_millis(1500),
            obj(vec![("x", Json::UInt(1))]),
        );
        assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("figure9"));
        assert_eq!(doc.get("scale").and_then(Json::as_str), Some("test"));
        assert!(doc.get("wall-seconds").and_then(Json::as_f64).unwrap() > 1.0);
        assert_eq!(
            doc.get("result").and_then(|r| r.get("x")).and_then(Json::as_u64),
            Some(1)
        );
    }
}
