//! Adversarial property tests for the strict JSON parser.
//!
//! `redbin::json::parse` now sits on a network boundary (`redbin-served`
//! feeds it raw socket lines), so it must reject malformed input with an
//! error — never a panic, a stack overflow, or a silent misparse. These
//! tests drive it with `redbin-testkit` property cases: deeply nested
//! documents around and far past the depth limit, truncations of valid
//! envelopes at every char boundary, duplicate object keys, and plain
//! byte garbage.

use redbin::json::{self, Json, MAX_DEPTH};
use redbin_testkit::{cases, Rng};

/// A random JSON document. `depth` bounds recursion so generation cannot
/// itself blow the stack; leaves cover every scalar variant including
/// strings with escapes and non-ASCII.
fn random_json(rng: &mut Rng, depth: usize) -> Json {
    let leaf = depth == 0 || rng.range_usize(0, 3) == 0;
    if leaf {
        match rng.range_usize(0, 6) {
            0 => Json::Null,
            1 => Json::Bool(rng.next_bool()),
            2 => Json::Int(rng.next_i64()),
            3 => Json::UInt(rng.next_u64()),
            4 => Json::Num(rng.next_i64() as f64 / 64.0),
            _ => Json::Str(random_string(rng)),
        }
    } else if rng.next_bool() {
        let n = rng.range_usize(0, 4);
        Json::Arr((0..n).map(|_| random_json(rng, depth - 1)).collect())
    } else {
        let n = rng.range_usize(0, 4);
        let mut obj = Json::object();
        for i in 0..n {
            // Distinct keys: the strict parser rejects duplicates.
            obj.set(&format!("k{i}-{}", random_string(rng)), random_json(rng, depth - 1));
        }
        obj
    }
}

fn random_string(rng: &mut Rng) -> String {
    let n = rng.range_usize(0, 8);
    (0..n)
        .map(|_| *rng.pick(&['a', 'Z', '0', ' ', '"', '\\', '\n', '\t', 'µ', '⌘']))
        .collect()
}

/// Serializes `inner` wrapped in `extra` levels of `[` … `]` nesting.
fn nested(extra: usize, inner: &str) -> String {
    let mut s = String::with_capacity(extra * 2 + inner.len());
    for _ in 0..extra {
        s.push('[');
    }
    s.push_str(inner);
    for _ in 0..extra {
        s.push(']');
    }
    s
}

#[test]
fn random_documents_roundtrip_through_both_renderings() {
    cases(200, 0x5EED_0001, |rng| {
        let doc = random_json(rng, 5);
        let compact = json::parse(&doc.to_compact()).expect("compact reparses");
        assert_eq!(compact.to_compact(), doc.to_compact());
        let pretty = json::parse(&doc.to_pretty()).expect("pretty reparses");
        assert_eq!(pretty.to_compact(), doc.to_compact());
    });
}

#[test]
fn depth_limit_is_exact_and_panic_free() {
    // Exactly at the limit: fine. One past: an error, not a crash.
    assert!(json::parse(&nested(MAX_DEPTH, "0")).is_ok());
    let err = json::parse(&nested(MAX_DEPTH + 1, "0")).unwrap_err();
    assert!(err.to_string().contains("deep"), "{err}");
    // Fuzz the boundary region and far past it (a recursive-descent parser
    // without the limit would overflow its stack near ~100k).
    cases(64, 0x5EED_0002, |rng| {
        let extra = rng.range_usize(1, 120_000);
        let doc = nested(extra, "true");
        match json::parse(&doc) {
            Ok(_) => assert!(extra <= MAX_DEPTH, "depth {extra} must be rejected"),
            Err(e) => assert!(extra > MAX_DEPTH, "depth {extra} must parse: {e}"),
        }
        // Unterminated nesting must also fail cleanly at any depth.
        let open_only = &doc[..extra];
        assert!(json::parse(open_only).is_err());
    });
}

#[test]
fn every_truncation_of_a_valid_envelope_errors_cleanly() {
    cases(60, 0x5EED_0003, |rng| {
        // Object-rooted like every wire envelope: any proper prefix is
        // incomplete, so the strict parser must error on all of them.
        let mut doc = Json::object();
        // Not a real envelope, just envelope-shaped fuzz input.
        // redbin-lint: allow(wire-version)
        doc.set("v", Json::UInt(1));
        doc.set("body", random_json(rng, 4));
        let line = doc.to_compact();
        for (cut, _) in line.char_indices() {
            let truncated = &line[..cut];
            assert!(
                json::parse(truncated).is_err(),
                "prefix of length {cut} of {line:?} must not parse"
            );
        }
        assert!(json::parse(&line).is_ok(), "the full line still parses");
    });
}

#[test]
fn duplicate_keys_are_rejected_wherever_they_hide() {
    cases(100, 0x5EED_0004, |rng| {
        // Build an object with distinct keys, then duplicate one of them at
        // a random position — possibly nested inside another object.
        let n = rng.range_usize(2, 6);
        let keys: Vec<String> = (0..n).map(|i| format!("k{i}")).collect();
        let dup = rng.pick(&keys).clone();
        let mut fields: Vec<String> = keys
            .iter()
            .map(|k| format!("\"{k}\":{}", rng.range_u64(0, 100)))
            .collect();
        let at = rng.range_usize(0, fields.len() + 1);
        fields.insert(at, format!("\"{dup}\":null"));
        let flat = format!("{{{}}}", fields.join(","));
        let err = json::parse(&flat).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{flat}: {err}");
        let wrapped = format!("{{\"outer\":{flat}}}");
        assert!(json::parse(&wrapped).is_err(), "{wrapped}");
        // The same key in sibling objects is fine.
        let siblings = format!("{{\"a\":{{\"{dup}\":1}},\"b\":{{\"{dup}\":2}}}}");
        assert!(json::parse(&siblings).is_ok(), "{siblings}");
    });
}

#[test]
fn byte_garbage_never_panics_the_parser() {
    cases(300, 0x5EED_0005, |rng| {
        let n = rng.range_usize(0, 64);
        let garbage: String = (0..n)
            .map(|_| {
                *rng.pick(&[
                    '{', '}', '[', ']', '"', ':', ',', '\\', '0', '9', '-', '+', '.', 'e',
                    't', 'f', 'n', 'u', 'l', ' ', '\n', '\u{0}', 'µ', '𝕊',
                ])
            })
            .collect();
        // Any outcome is acceptable except a panic; errors must carry a
        // message (offsets are checked by the unit tests).
        if let Err(e) = json::parse(&garbage) {
            assert!(!e.to_string().is_empty());
        }
    });
}
